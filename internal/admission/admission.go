// Package admission implements adaptive overload protection for the
// service tier (DESIGN.md §15): a gradient/AIMD concurrency limiter fed
// by observed request latency, with two cost classes and priority
// shedding, plus the client-side counterparts (retry budget, circuit
// breaker) that keep retrying callers from amplifying an overload.
//
// The limiter's contract is deliberately small: Acquire reserves one
// concurrency slot for a request (or refuses it), Release returns the
// slot and feeds the request's latency into the limit controller. The
// limit itself adapts: every Window completions the controller compares
// the window's p99 latency against TargetP99 and applies
// additive-increase / multiplicative-decrease — the classic AIMD
// gradient that converges on the highest concurrency the backend
// sustains without blowing the latency target.
//
// Cost classes implement priority shedding ("shed cheap-to-recompute
// before expensive-in-flight"):
//
//   - Expensive requests (searches, cold predictions, batches) queue
//     FIFO up to MaxQueue when the limit is reached and are handed
//     released slots first; past MaxQueue they shed with ErrShed.
//     Queueing is deadline-aware: a request whose context deadline
//     cannot fit the projected queue wait plus one expected service
//     time sheds immediately instead of waiting to die — the queue
//     holds only work that can still meet its deadline, so a short
//     deadline never turns the queue into bufferbloat.
//   - Cheap requests (brownout fallbacks, cheap-to-recompute reads)
//     never queue: they admit immediately or shed immediately. They may
//     borrow a single slot past the limit — a serial "brownout lane"
//     that keeps the degraded fast path live while full-service work is
//     saturated — but a second concurrent cheap request sheds.
//
// Under saturation released slots drain the expensive queue before any
// cheap request admits, so in-flight expensive work always completes
// and the cheap class is shed first, by construction.
package admission

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"cbes/internal/obs"
)

// Limiter observability. The gauges expose the controller's live state;
// the shed counter is split by class so priority shedding is visible
// (cheap sheds should dominate under overload). The shed-ratio gauge is
// the /readyz warning feed: the shed fraction of the last completed
// adjustment window (it holds its value between windows, so a quiet
// limiter reports the last busy window until traffic resumes).
var (
	gaugeLimit = obs.Default().Gauge(
		"cbes_admission_limit", "Current adaptive concurrency limit (AIMD-controlled).")
	gaugeInflight = obs.Default().Gauge(
		"cbes_admission_inflight", "Requests currently holding an admission slot.")
	gaugeQueue = obs.Default().Gauge(
		"cbes_admission_queue", "Expensive-class requests queued waiting for a slot.")
	gaugeShedRatio = obs.Default().Gauge(
		"cbes_admission_shed_ratio", "Shed fraction of the last completed adjustment window [0,1].")
	shedTotal = obs.Default().CounterVec(
		"cbes_admission_shed_total", "Requests refused by the admission limiter, by cost class.", "class")
	limitDecreases = obs.Default().Counter(
		"cbes_admission_limit_decreases_total", "AIMD multiplicative decreases (window p99 above target).")
)

// ErrShed is returned when the limiter refuses a request: the limit is
// reached and the request's class does not queue (or its queue is
// full). The condition is transient but load-driven — clients should
// retry only within their retry budget and back off hard. The "cbes:"
// code prefix survives net/rpc error flattening (DESIGN.md §15).
var ErrShed = errors.New("cbes:shed: admission limiter shed this request (server overloaded)")

// Class is a request cost class.
type Class int

const (
	// Cheap marks requests that are cheap to serve and cheap for the
	// caller to recompute later: they are shed first (no queue).
	Cheap Class = iota
	// Expensive marks requests carrying real work (searches, cold
	// predictions): they queue for a slot up to the queue bound.
	Expensive
)

// String returns the metric label for the class.
func (c Class) String() string {
	if c == Cheap {
		return "cheap"
	}
	return "expensive"
}

// Config tunes a Limiter. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Initial is the starting concurrency limit. Default
	// max(8, 4×GOMAXPROCS) — generous enough that lightly loaded
	// servers rarely queue, but scaled to the machine: a limit far
	// above what the cores can run concurrently is just latent
	// bufferbloat the controller has to burn windows walking back.
	Initial int
	// Min and Max clamp the adaptive limit (defaults 2 and
	// max(256, Initial)).
	Min, Max int
	// TargetP99 is the latency the controller steers the window p99
	// toward (default 500ms). Above it the limit shrinks
	// multiplicatively; at or below it grows additively.
	TargetP99 time.Duration
	// Window is the number of completions per adjustment round
	// (default 64).
	Window int
	// MaxQueue bounds the expensive-class FIFO queue; requests past it
	// shed (default 256). Negative disables queueing entirely.
	MaxQueue int
}

func (c Config) withDefaults() Config {
	if c.Initial <= 0 {
		c.Initial = 4 * runtime.GOMAXPROCS(0)
		if c.Initial < 8 {
			c.Initial = 8
		}
	}
	if c.Min <= 0 {
		c.Min = 2
	}
	if c.Max <= 0 {
		c.Max = 256
		if c.Max < c.Initial {
			c.Max = c.Initial
		}
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.TargetP99 <= 0 {
		c.TargetP99 = 500 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	return c
}

// Ticket is one granted admission slot. Return it with Limiter.Release.
type Ticket struct {
	l     *Limiter
	class Class
	start time.Time
}

// Limiter is an adaptive concurrency limiter. A nil *Limiter is a
// disabled no-op: Acquire admits everything (returning a nil Ticket)
// and Release ignores nil tickets, so callers need no branching.
type Limiter struct {
	cfg Config

	mu       sync.Mutex
	limit    float64
	inflight int
	queue    []chan struct{} // expensive waiters, FIFO; closed chan = slot handed over

	// Latency window feeding the AIMD controller. Only expensive-class
	// completions are observed: mixing in microsecond cheap completions
	// would drag the window p99 below target and inflate the limit.
	win      *obs.Histogram
	winObs   int // expensive completions observed in the window
	winDone  int // all completions in the window (shed-ratio denominator)
	winShed  int // sheds in the window (shed-ratio numerator)
	winStart time.Time

	// svcEWMA tracks the expected expensive-class service time and
	// gapEWMA the inter-completion gap (both seconds, exponentially
	// weighted) — together the projection model behind the
	// deadline-aware queue admission check. The gap measures *observed*
	// drain rate directly, which stays honest even when service time
	// inflates with concurrency (CPU-bound backends: limit slots do not
	// actually run in parallel). Zero until enough completions arrive,
	// which disables the check (nothing to project from).
	svcEWMA float64
	gapEWMA float64
	lastRel time.Time
}

// latencyBuckets spans the request latencies the controller cares
// about: 100µs .. 100s, log-spaced.
func latencyBuckets() []float64 { return obs.LogBuckets(1e-4, 100) }

// New builds a limiter. The exported gauges reflect the most recently
// constructed limiter (last-writer-wins, the repo's gauge idiom).
func New(cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	l := &Limiter{cfg: cfg, limit: float64(cfg.Initial), win: obs.NewHistogram(latencyBuckets()), winStart: time.Now()}
	gaugeLimit.Set(l.limit)
	gaugeInflight.Set(0)
	gaugeQueue.Set(0)
	return l
}

// Limit reports the current concurrency limit.
func (l *Limiter) Limit() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// Inflight reports the slots currently held.
func (l *Limiter) Inflight() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// ShedRatio reports the shed fraction of the last completed adjustment
// window [0,1] — the /readyz warning feed. It holds between windows.
func (l *Limiter) ShedRatio() float64 {
	if l == nil {
		return 0
	}
	return gaugeShedRatio.Value()
}

// Acquire reserves a slot for a request of the given class, blocking an
// expensive request on the queue until a slot frees or ctx expires. It
// returns ErrShed when the limiter refuses the request outright and
// ctx.Err() when the deadline fires while queued. A nil limiter admits
// with a nil ticket.
func (l *Limiter) Acquire(ctx context.Context, class Class) (*Ticket, error) {
	if l == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dl, hasDL := ctx.Deadline()
	l.mu.Lock()
	bar := int(l.limit)
	if class == Cheap {
		bar++ // the serial brownout lane (see package doc)
	}
	if l.inflight < bar && (class == Cheap || len(l.queue) == 0) {
		// Even with a slot free, an expensive request whose expected
		// service time cannot fit its deadline is doomed on arrival —
		// admitting it burns a slot on work nobody will use. This also
		// drains congestion fast: when in-service times have inflated
		// past the deadline budget, arrivals shed until completions pull
		// the EWMA back under it.
		if class == Expensive && hasDL && l.svcEWMA > 0 &&
			0.7*time.Until(dl).Seconds() < l.svcEWMA {
			l.winShed++
			l.winDone++
			l.mu.Unlock()
			shedTotal.With(class.String()).Inc()
			return nil, ErrShed
		}
		// Expensive requests respect FIFO: they may not jump a non-empty
		// queue even when a slot is momentarily free.
		l.inflight++
		gaugeInflight.Set(float64(l.inflight))
		l.mu.Unlock()
		return &Ticket{l: l, class: class, start: time.Now()}, nil
	}
	if class == Cheap || len(l.queue) >= l.cfg.MaxQueue {
		l.winShed++
		l.winDone++
		l.mu.Unlock()
		shedTotal.With(class.String()).Inc()
		return nil, ErrShed
	}
	if hasDL && l.svcEWMA > 0 && l.gapEWMA > 0 {
		// Deadline-aware admission: shed now when the projected queue
		// wait plus one service time cannot fit comfortably inside the
		// request's remaining deadline. One completion frees a slot
		// every gapEWMA on average, so a request entering at position
		// len(queue)+1 waits about (len(queue)+1)·gapEWMA before it
		// even starts. The 0.7 margin absorbs model error and the
		// reply's way back out — admitting work projected to finish at
		// the exact deadline just manufactures deadline misses.
		if wait := (float64(len(l.queue)) + 1) * l.gapEWMA; 0.7*time.Until(dl).Seconds() < wait+l.svcEWMA {
			l.winShed++
			l.winDone++
			l.mu.Unlock()
			shedTotal.With(class.String()).Inc()
			return nil, ErrShed
		}
	}
	w := make(chan struct{})
	l.queue = append(l.queue, w)
	gaugeQueue.Set(float64(len(l.queue)))
	l.mu.Unlock()

	select {
	case <-w:
		// Slot handed over by a releaser; inflight already counts us.
		// If the deadline fired while the hand-off raced ctx.Done, give
		// the slot straight back rather than compute doomed work.
		if err := ctx.Err(); err != nil {
			l.mu.Lock()
			l.releaseSlotLocked()
			l.winShed++
			l.winDone++
			l.mu.Unlock()
			shedTotal.With(class.String()).Inc()
			return nil, err
		}
		return &Ticket{l: l, class: class, start: time.Now()}, nil
	case <-ctx.Done():
		l.mu.Lock()
		removed := false
		for i, q := range l.queue {
			if q == w {
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				removed = true
				break
			}
		}
		gaugeQueue.Set(float64(len(l.queue)))
		if !removed {
			// A releaser popped us (and closed w) before we could leave the
			// queue: the slot is ours, give it back properly.
			l.releaseSlotLocked()
		} else {
			l.winShed++
			l.winDone++
			shedTotal.With(class.String()).Inc()
		}
		l.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Release returns a ticket's slot, hands it to the head of the
// expensive queue when the limit allows, and feeds the request latency
// into the AIMD controller. Safe on nil limiters and nil tickets.
func (l *Limiter) Release(t *Ticket) {
	if l == nil || t == nil {
		return
	}
	l.mu.Lock()
	if t.class == Expensive {
		now := time.Now()
		s := now.Sub(t.start).Seconds()
		l.win.Observe(s)
		l.winObs++
		if l.svcEWMA == 0 {
			l.svcEWMA = s
		} else {
			l.svcEWMA = 0.9*l.svcEWMA + 0.1*s
		}
		if !l.lastRel.IsZero() {
			gap := now.Sub(l.lastRel).Seconds()
			// An idle stretch is not a drain measurement: a gap longer
			// than the completing request's own service time says "no
			// load", not "slow drain", so clamp it there.
			if gap > s {
				gap = s
			}
			if l.gapEWMA == 0 {
				l.gapEWMA = gap
			} else {
				l.gapEWMA = 0.9*l.gapEWMA + 0.1*gap
			}
		}
		l.lastRel = now
	}
	l.winDone++
	// Adjust on a full window, or early once a second when completions
	// are slow: heavy-request workloads (tens of ms each) would take
	// many seconds to fill a 64-completion window, leaving the limit
	// frozen exactly when overload needs it moving.
	if l.winObs >= l.cfg.Window ||
		(l.winObs >= 8 && time.Since(l.winStart) >= time.Second) {
		l.adjustLocked()
	}
	l.releaseSlotLocked()
	l.mu.Unlock()
}

// releaseSlotLocked frees one slot: hand-off to the queue head when the
// post-hand-off inflight still fits the (possibly just shrunk) limit,
// plain decrement otherwise. Callers hold l.mu.
func (l *Limiter) releaseSlotLocked() {
	if len(l.queue) > 0 && l.inflight <= int(l.limit) {
		w := l.queue[0]
		l.queue = l.queue[1:]
		gaugeQueue.Set(float64(len(l.queue)))
		close(w) // inflight transfers to the waiter
		return
	}
	l.inflight--
	gaugeInflight.Set(float64(l.inflight))
}

// adjustLocked runs one AIMD round: multiplicative decrease when the
// window p99 overshot the target — proportional to the overshoot but
// never more than halving, so a limit stranded far above what the
// backend sustains walks down in a few windows instead of tens —
// additive increase otherwise, then resets the window. Callers hold
// l.mu.
func (l *Limiter) adjustLocked() {
	p99 := l.win.Quantile(0.99)
	if target := l.cfg.TargetP99.Seconds(); p99 > target {
		f := target / p99
		if f < 0.5 {
			f = 0.5
		}
		l.limit *= f
		limitDecreases.Inc()
	} else {
		l.limit++
	}
	if l.limit < float64(l.cfg.Min) {
		l.limit = float64(l.cfg.Min)
	}
	if l.limit > float64(l.cfg.Max) {
		l.limit = float64(l.cfg.Max)
	}
	gaugeLimit.Set(l.limit)
	if l.winDone+l.winShed > 0 {
		gaugeShedRatio.Set(float64(l.winShed) / float64(l.winDone))
	}
	l.win = obs.NewHistogram(latencyBuckets())
	l.winObs, l.winDone, l.winShed = 0, 0, 0
	l.winStart = time.Now()
}
