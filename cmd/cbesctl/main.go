// Command cbesctl is the client CLI for the cbesd daemon.
//
// Usage:
//
//	cbesctl [-addr 127.0.0.1:7411] [-timeout 5s] [-retries 3] status
//	cbesctl [-addr ...] evaluate -app lu.B.8 -mapping 0,1,2,3,4,5,6,7
//	cbesctl [-addr ...] compare  -app lu.B.8 -mapping 0,1,2,3,4,5,6,7 -mapping 20,21,...
//	cbesctl [-addr ...] schedule -app lu.B.8 -alg cs -pool 0-7,10-21 [-seed 1]
//	cbesctl [-addr ...] advance  -seconds 30
//	cbesctl [-addr ...] metrics  [-format prom|json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cbes/internal/service"
)

type mappingsFlag [][]int

func (m *mappingsFlag) String() string { return fmt.Sprint([][]int(*m)) }
func (m *mappingsFlag) Set(s string) error {
	ids, err := parseIDList(s)
	if err != nil {
		return err
	}
	*m = append(*m, ids)
	return nil
}

// parseIDList parses "0,3,5-9" into a node-ID slice.
func parseIDList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("bad range %q", part)
			}
			b, err := strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("bad range %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad id %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty id list %q", s)
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "cbesd address")
	timeout := flag.Duration("timeout", service.DefaultDialTimeout, "connection timeout")
	retries := flag.Int("retries", 3, "retries for transient failures on idempotent commands (-1 disables)")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	verb := flag.Arg(0)

	sub := flag.NewFlagSet(verb, flag.ExitOnError)
	app := sub.String("app", "", "application name")
	alg := sub.String("alg", "cs", "scheduler: cs, ncs, rs, ga")
	pool := sub.String("pool", "", "node pool, e.g. 0-7,10,12")
	seed := sub.Int64("seed", 1, "scheduler seed")
	seconds := sub.Float64("seconds", 10, "simulated seconds to advance")
	explain := sub.Bool("explain", false, "evaluate: show the per-process R/C breakdown")
	format := sub.String("format", "prom", "metrics format: prom (Prometheus text) or json")
	var mappings mappingsFlag
	sub.Var(&mappings, "mapping", "mapping as node list (repeatable for compare)")
	if err := sub.Parse(flag.Args()[1:]); err != nil {
		log.Fatal(err)
	}

	c, err := service.DialTimeout(*addr, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if *retries <= 0 {
		*retries = -1 // 0 or negative both mean "no retries"
	}
	c.SetRetryPolicy(service.RetryPolicy{Max: *retries})

	switch verb {
	case "status":
		st, err := c.Status()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cluster    : %s (%d nodes)\n", st.Cluster, st.Nodes)
		fmt.Printf("sim time   : %.1fs\n", st.SimSeconds)
		fmt.Printf("epoch      : %d\n", st.Epoch)
		fmt.Printf("apps       : %s\n", strings.Join(st.Apps, ", "))
		fmt.Printf("avail CPU  : %s\n", fmtFloats(st.AvailCPU))
		fmt.Printf("NIC util   : %s\n", fmtFloats(st.NICUtil))
	case "evaluate":
		if *app == "" || len(mappings) != 1 {
			log.Fatal("evaluate needs -app and exactly one -mapping")
		}
		if *explain {
			r, err := c.Explain(*app, mappings[0])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(r.Text)
			break
		}
		r, err := c.Evaluate(*app, mappings[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted execution time: %.3fs (critical rank %d)\n", r.Seconds, r.Critical)
		if r.Degraded {
			fmt.Printf("DEGRADED: stale monitoring data on nodes %v; prediction used profile-only fallback\n", r.StaleNodes)
		}
	case "compare":
		if *app == "" || len(mappings) < 2 {
			log.Fatal("compare needs -app and at least two -mapping flags")
		}
		r, err := c.Compare(*app, mappings)
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range r.Seconds {
			marker := " "
			if i == r.Best {
				marker = "*"
			}
			note := ""
			if i < len(r.Degraded) && r.Degraded[i] {
				note = fmt.Sprintf("  [degraded: stale nodes %v]", r.StaleNodes[i])
			}
			fmt.Printf("%s mapping %v: %.3fs%s\n", marker, mappings[i], s, note)
		}
	case "schedule":
		if *app == "" || *pool == "" {
			log.Fatal("schedule needs -app and -pool")
		}
		ids, err := parseIDList(*pool)
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.Schedule(*app, *alg, ids, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mapping   : %v\n", r.Mapping)
		fmt.Printf("predicted : %.3fs\n", r.Predicted)
		fmt.Printf("evals     : %d\n", r.Evaluations)
		fmt.Printf("scheduler : %dµs\n", r.SchedulerMicros)
		if r.Degraded {
			fmt.Printf("DEGRADED  : stale monitoring data on nodes %v; prediction used profile-only fallback\n", r.StaleNodes)
		}
	case "advance":
		r, err := c.Advance(*seconds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sim time now %.1fs (epoch %d)\n", r.SimSeconds, r.Epoch)
	case "metrics":
		r, err := c.Metrics(*format)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			fmt.Println()
		}
	default:
		usage()
	}
}

func fmtFloats(xs []float64) string {
	var parts []string
	for _, x := range xs {
		parts = append(parts, fmt.Sprintf("%.2f", x))
	}
	return strings.Join(parts, " ")
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cbesctl [-addr host:port] status|evaluate|compare|schedule|advance|metrics [flags]")
	os.Exit(2)
}
