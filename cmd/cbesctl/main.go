// Command cbesctl is the client CLI for the cbesd daemon.
//
// Usage:
//
//	cbesctl [-addr 127.0.0.1:7411] [-timeout 5s] [-retries 3] [-deadline 2s] status
//	cbesctl [-addr ...] evaluate -app lu.B.8 -mapping 0,1,2,3,4,5,6,7
//	cbesctl [-addr ...] compare  -app lu.B.8 -mapping 0,1,2,3,4,5,6,7 -mapping 20,21,...
//	cbesctl [-addr ...] schedule -app lu.B.8 -alg cs -pool 0-7,10-21 [-seed 1] [-effort N]
//	cbesctl [-addr ...] advance  -seconds 30
//	cbesctl [-addr ...] metrics  [-format prom|json] [-json] [-prefix cbes_accuracy]
//	cbesctl [-addr ...] decisions [-n 20] [-kind schedule] [-app lu.B.8] [-trace HEXID]
//	cbesctl [-addr ...] report   -id PREDID -actual 61.3
//	cbesctl [-addr ...] accuracy [-app lu.B.8] [-sched cs] [-samples 10]
//
// Commands that make the server decide something (evaluate, compare,
// schedule) print the request's trace ID; feed it to the daemon's
// /debug/trace?id=... endpoint for the causal flame view, or to
// `cbesctl decisions -trace ...` for the matching flight-recorder
// record. They also print a prediction ID (predid): once the mapping has
// actually run, `cbesctl report -id PREDID -actual SECONDS` joins the
// measured runtime back to the prediction, and `cbesctl accuracy` shows
// the resulting calibration statistics and drift verdict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cbes/internal/admission"
	"cbes/internal/obs"
	"cbes/internal/service"
)

type mappingsFlag [][]int

func (m *mappingsFlag) String() string { return fmt.Sprint([][]int(*m)) }
func (m *mappingsFlag) Set(s string) error {
	ids, err := parseIDList(s)
	if err != nil {
		return err
	}
	*m = append(*m, ids)
	return nil
}

// parseIDList parses "0,3,5-9" into a node-ID slice.
func parseIDList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("bad range %q", part)
			}
			b, err := strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("bad range %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad id %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty id list %q", s)
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "cbesd address")
	timeout := flag.Duration("timeout", service.DefaultDialTimeout, "connection timeout")
	retries := flag.Int("retries", 3, "retries for transient failures on idempotent commands (-1 disables)")
	deadline := flag.Duration("deadline", 0, "per-call deadline propagated to the server (it abandons work past it; 0 disables)")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	verb := flag.Arg(0)

	sub := flag.NewFlagSet(verb, flag.ExitOnError)
	app := sub.String("app", "", "application name")
	alg := sub.String("alg", "cs", "scheduler: cs, ncs, rs, ga")
	pool := sub.String("pool", "", "node pool, e.g. 0-7,10,12")
	seed := sub.Int64("seed", 1, "scheduler seed")
	effort := sub.Int("effort", 0, "schedule: search-effort cap in energy evaluations (0 = server default)")
	seconds := sub.Float64("seconds", 10, "simulated seconds to advance")
	explain := sub.Bool("explain", false, "evaluate: show the per-process R/C breakdown")
	format := sub.String("format", "prom", "metrics format: prom (Prometheus text) or json")
	n := sub.Int("n", 20, "decisions: max records to fetch (0 for all resident)")
	kind := sub.String("kind", "", "decisions: filter by kind (schedule, evaluate, explain, compare, outcome)")
	traceID := sub.String("trace", "", "decisions: filter by hex trace id")
	prefix := sub.String("prefix", "", "metrics: only emit families whose name starts with this prefix")
	jsonOut := sub.Bool("json", false, "metrics: shorthand for -format json")
	predID := sub.String("id", "", "report: prediction ID to join the outcome to")
	actual := sub.Float64("actual", 0, "report: measured runtime in seconds")
	sched := sub.String("sched", "", "accuracy: filter buckets by scheduler name")
	samples := sub.Int("samples", 10, "accuracy: recent joined pairs to list (0 for all resident)")
	var mappings mappingsFlag
	sub.Var(&mappings, "mapping", "mapping as node list (repeatable for compare)")
	if err := sub.Parse(flag.Args()[1:]); err != nil {
		log.Fatal(err)
	}

	c, err := service.DialTimeout(*addr, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if *retries <= 0 {
		*retries = -1 // 0 or negative both mean "no retries"
	}
	c.SetRetryPolicy(service.RetryPolicy{Max: *retries})
	if *deadline > 0 {
		c.SetCallTimeout(*deadline)
	}
	// A retry budget keeps a scripted cbesctl loop from multiplying the
	// offered load against an already-overloaded daemon.
	c.SetRetryBudget(admission.NewRetryBudget(0))

	switch verb {
	case "status":
		st, err := c.Status()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cluster    : %s (%d nodes)\n", st.Cluster, st.Nodes)
		fmt.Printf("sim time   : %.1fs\n", st.SimSeconds)
		fmt.Printf("epoch      : %d\n", st.Epoch)
		fmt.Printf("apps       : %s\n", strings.Join(st.Apps, ", "))
		fmt.Printf("avail CPU  : %s\n", fmtFloats(st.AvailCPU))
		fmt.Printf("NIC util   : %s\n", fmtFloats(st.NICUtil))
	case "evaluate":
		if *app == "" || len(mappings) != 1 {
			log.Fatal("evaluate needs -app and exactly one -mapping")
		}
		if *explain {
			r, err := c.Explain(*app, mappings[0])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(r.Text)
			break
		}
		r, err := c.Evaluate(*app, mappings[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted execution time: %.3fs (critical rank %d)\n", r.Seconds, r.Critical)
		if r.TraceID != "" {
			fmt.Printf("trace: %s\n", r.TraceID)
		}
		if r.PredictionID != "" {
			fmt.Printf("predid : %s\n", r.PredictionID)
		}
		printBand(r.ErrBandLowPct, r.ErrBandHighPct, r.ErrBandSamples)
		if r.Brownout {
			fmt.Println("BROWNOUT: server is shedding load; answered from the profile-only fast path (nominal conditions, no predid)")
		}
		if r.Degraded {
			fmt.Printf("DEGRADED: stale monitoring data on nodes %v; prediction used profile-only fallback\n", r.StaleNodes)
		}
	case "compare":
		if *app == "" || len(mappings) < 2 {
			log.Fatal("compare needs -app and at least two -mapping flags")
		}
		r, err := c.Compare(*app, mappings)
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range r.Seconds {
			marker := " "
			if i == r.Best {
				marker = "*"
			}
			note := ""
			if i < len(r.Degraded) && r.Degraded[i] {
				note = fmt.Sprintf("  [degraded: stale nodes %v]", r.StaleNodes[i])
			}
			id := ""
			if i < len(r.PredictionIDs) && r.PredictionIDs[i] != "" {
				id = "  predid=" + r.PredictionIDs[i]
			}
			fmt.Printf("%s mapping %v: %.3fs%s%s\n", marker, mappings[i], s, id, note)
		}
		if r.Brownout {
			fmt.Println("BROWNOUT: server is shedding load; batch answered from the profile-only fast path (nominal conditions, no predids)")
		}
		if r.TraceID != "" {
			fmt.Printf("trace: %s\n", r.TraceID)
		}
		printBand(r.ErrBandLowPct, r.ErrBandHighPct, r.ErrBandSamples)
	case "schedule":
		if *app == "" || *pool == "" {
			log.Fatal("schedule needs -app and -pool")
		}
		ids, err := parseIDList(*pool)
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.ScheduleEffort(*app, *alg, ids, *seed, *effort)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mapping   : %v\n", r.Mapping)
		fmt.Printf("predicted : %.3fs\n", r.Predicted)
		fmt.Printf("evals     : %d\n", r.Evaluations)
		fmt.Printf("scheduler : %dµs\n", r.SchedulerMicros)
		if r.TraceID != "" {
			fmt.Printf("trace     : %s\n", r.TraceID)
		}
		if r.PredictionID != "" {
			fmt.Printf("predid    : %s\n", r.PredictionID)
		}
		printBand(r.ErrBandLowPct, r.ErrBandHighPct, r.ErrBandSamples)
		if r.Degraded {
			fmt.Printf("DEGRADED  : stale monitoring data on nodes %v; prediction used profile-only fallback\n", r.StaleNodes)
		}
	case "advance":
		r, err := c.Advance(*seconds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sim time now %.1fs (epoch %d)\n", r.SimSeconds, r.Epoch)
	case "decisions":
		r, err := c.Decisions(*n, *kind, *app, *traceID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d record(s) shown, %d recorded since start\n", len(r.Decisions), r.Total)
		for _, d := range r.Decisions {
			printDecision(d)
		}
	case "metrics":
		if *jsonOut {
			*format = service.FormatJSON
		}
		r, err := c.Metrics(*format)
		if err != nil {
			log.Fatal(err)
		}
		text := r.Text
		if *prefix != "" {
			if *format == service.FormatJSON {
				text, err = filterMetricsJSON(text, *prefix)
				if err != nil {
					log.Fatal(err)
				}
			} else {
				text = filterMetricsProm(text, *prefix)
			}
		}
		fmt.Print(text)
		if !strings.HasSuffix(text, "\n") {
			fmt.Println()
		}
	case "report":
		if *predID == "" || *actual <= 0 {
			log.Fatal("report needs -id and a positive -actual (seconds)")
		}
		r, err := c.ReportOutcome(*predID, *actual)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("joined %s: app=%s predicted=%.3fs actual=%.3fs err=%+.1f%%\n",
			*predID, r.App, r.Predicted, r.Actual, r.SignedErrPct)
		fmt.Printf("calibration: %s\n", calWord(r.CalibrationOK))
	case "accuracy":
		r, err := c.Accuracy(*app, *sched, *samples)
		if err != nil {
			log.Fatal(err)
		}
		printAccuracy(r)
	default:
		usage()
	}
}

// calWord renders the drift verdict: OK while recent error is consistent
// with the baseline, DRIFT otherwise.
func calWord(ok bool) string {
	if ok {
		return "OK"
	}
	return "DRIFT"
}

// printAccuracy renders the Accuracy reply: status header, per-bucket
// calibration table, recent joined pairs.
func printAccuracy(r *service.AccuracyReply) {
	st := r.Status
	fmt.Printf("calibration : %s (window MAPE %.1f%% over %d, baseline %.1f%% over %d)\n",
		calWord(st.CalibrationOK), st.WindowMAPEPct, st.WindowN, st.BaselineMAPEPct, st.BaselineN)
	fmt.Printf("joined      : %d (pending %d, unmatched %d, expired %d)\n",
		st.Joined, st.Pending, st.Unmatched, st.Expired)
	fmt.Printf("overall     : bias %+.1f%%  MAPE %.1f%%\n", st.BiasPct, st.MAPEPct)
	if len(r.Buckets) > 0 {
		fmt.Printf("\n%-16s %-12s %-8s %-6s %6s %8s %8s %7s %7s %7s  %s\n",
			"app", "scheduler", "degraded", "age", "n", "bias%", "mape%", "p50%", "p90%", "p99%", "band%")
		for _, b := range r.Buckets {
			deg := "no"
			if b.Degraded {
				deg = "yes"
			}
			fmt.Printf("%-16s %-12s %-8s %-6s %6d %+8.1f %8.1f %7.1f %7.1f %7.1f  [%+.1f,%+.1f]\n",
				b.App, orDash(b.Scheduler), deg, b.AgeBucket, b.Count,
				b.BiasPct, b.MAPEPct, b.P50Pct, b.P90Pct, b.P99Pct, b.BandLowPct, b.BandHighPct)
		}
	}
	if len(r.Samples) > 0 {
		fmt.Printf("\nrecent joined pairs (newest first):\n")
		for _, s := range r.Samples {
			fmt.Printf("  %-8s %-16s %-12s predicted=%.3fs actual=%.3fs err=%+.1f%%\n",
				s.ID, s.App, orDash(s.Scheduler), s.Predicted, s.Actual, s.SignedErrPct)
		}
	}
}

// printBand renders the empirical error band a prediction reply carries
// (nothing while the calibration bucket is still under-sampled).
func printBand(lo, hi float64, n int) {
	if n > 0 {
		fmt.Printf("errband   : [%+.1f%%, %+.1f%%] from %d joined outcomes\n", lo, hi, n)
	}
}

// filterMetricsProm keeps only the families whose metric name starts with
// prefix: HELP/TYPE headers plus sample lines (including _bucket/_sum/
// _count series and labeled children, which share the prefix).
func filterMetricsProm(text, prefix string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(text, "\n") {
		if line == "" {
			continue
		}
		name := line
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name = rest
		} else if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name = rest
		}
		if strings.HasPrefix(name, prefix) {
			b.WriteString(line)
		}
	}
	return b.String()
}

// filterMetricsJSON keeps only the top-level keys with the prefix in an
// expvar-style JSON metrics snapshot.
func filterMetricsJSON(text, prefix string) (string, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(text), &m); err != nil {
		return "", fmt.Errorf("metrics json: %w", err)
	}
	for k := range m {
		if !strings.HasPrefix(k, prefix) {
			delete(m, k)
		}
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// printDecision renders one flight-recorder record in a compact
// one-decision-per-paragraph form.
func printDecision(d obs.Decision) {
	fmt.Printf("%s  %-8s %-10s trace=%s epoch=%d\n",
		d.Time.Format("15:04:05.000"), d.Kind, d.App, orDash(d.TraceID), d.Epoch)
	if d.Algorithm != "" {
		fmt.Printf("  alg=%s seed=%d evals=%d scheduler=%dµs\n",
			d.Algorithm, d.Seed, d.Evaluations, d.SchedulerMicros)
	}
	if d.CacheLookups > 0 {
		fmt.Printf("  cache: %d/%d hit\n", d.CacheHits, d.CacheLookups)
	}
	if d.Coalesced {
		fmt.Printf("  coalesced: joined in-flight search of trace %s\n", orDash(d.LeaderTraceID))
	}
	if len(d.Mapping) > 0 {
		fmt.Printf("  mapping=%v predicted=%.3fs\n", d.Mapping, d.Predicted)
	}
	if d.PredictionID != "" {
		fmt.Printf("  predid=%s\n", d.PredictionID)
	}
	if d.Kind == "outcome" && d.Actual > 0 {
		fmt.Printf("  actual=%.3fs\n", d.Actual)
	}
	if d.Degraded {
		fmt.Printf("  DEGRADED: stale nodes %v\n", d.StaleNodes)
	}
	if d.Shed {
		if d.Brownout {
			fmt.Println("  SHED: admission limiter refused full service; answered via brownout fast path")
		} else {
			fmt.Println("  SHED: admission limiter refused this request")
		}
	}
	if d.Err != "" {
		fmt.Printf("  error: %s\n", d.Err)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fmtFloats(xs []float64) string {
	var parts []string
	for _, x := range xs {
		parts = append(parts, fmt.Sprintf("%.2f", x))
	}
	return strings.Join(parts, " ")
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cbesctl [-addr host:port] status|evaluate|compare|schedule|advance|metrics|decisions|report|accuracy [flags]")
	os.Exit(2)
}
