// Command cbesctl is the client CLI for the cbesd daemon.
//
// Usage:
//
//	cbesctl [-addr 127.0.0.1:7411] [-timeout 5s] [-retries 3] status
//	cbesctl [-addr ...] evaluate -app lu.B.8 -mapping 0,1,2,3,4,5,6,7
//	cbesctl [-addr ...] compare  -app lu.B.8 -mapping 0,1,2,3,4,5,6,7 -mapping 20,21,...
//	cbesctl [-addr ...] schedule -app lu.B.8 -alg cs -pool 0-7,10-21 [-seed 1]
//	cbesctl [-addr ...] advance  -seconds 30
//	cbesctl [-addr ...] metrics  [-format prom|json]
//	cbesctl [-addr ...] decisions [-n 20] [-kind schedule] [-app lu.B.8] [-trace HEXID]
//
// Commands that make the server decide something (evaluate, compare,
// schedule) print the request's trace ID; feed it to the daemon's
// /debug/trace?id=... endpoint for the causal flame view, or to
// `cbesctl decisions -trace ...` for the matching flight-recorder
// record.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cbes/internal/obs"
	"cbes/internal/service"
)

type mappingsFlag [][]int

func (m *mappingsFlag) String() string { return fmt.Sprint([][]int(*m)) }
func (m *mappingsFlag) Set(s string) error {
	ids, err := parseIDList(s)
	if err != nil {
		return err
	}
	*m = append(*m, ids)
	return nil
}

// parseIDList parses "0,3,5-9" into a node-ID slice.
func parseIDList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("bad range %q", part)
			}
			b, err := strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("bad range %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad id %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty id list %q", s)
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "cbesd address")
	timeout := flag.Duration("timeout", service.DefaultDialTimeout, "connection timeout")
	retries := flag.Int("retries", 3, "retries for transient failures on idempotent commands (-1 disables)")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	verb := flag.Arg(0)

	sub := flag.NewFlagSet(verb, flag.ExitOnError)
	app := sub.String("app", "", "application name")
	alg := sub.String("alg", "cs", "scheduler: cs, ncs, rs, ga")
	pool := sub.String("pool", "", "node pool, e.g. 0-7,10,12")
	seed := sub.Int64("seed", 1, "scheduler seed")
	seconds := sub.Float64("seconds", 10, "simulated seconds to advance")
	explain := sub.Bool("explain", false, "evaluate: show the per-process R/C breakdown")
	format := sub.String("format", "prom", "metrics format: prom (Prometheus text) or json")
	n := sub.Int("n", 20, "decisions: max records to fetch (0 for all resident)")
	kind := sub.String("kind", "", "decisions: filter by kind (schedule, evaluate, explain, compare)")
	traceID := sub.String("trace", "", "decisions: filter by hex trace id")
	var mappings mappingsFlag
	sub.Var(&mappings, "mapping", "mapping as node list (repeatable for compare)")
	if err := sub.Parse(flag.Args()[1:]); err != nil {
		log.Fatal(err)
	}

	c, err := service.DialTimeout(*addr, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if *retries <= 0 {
		*retries = -1 // 0 or negative both mean "no retries"
	}
	c.SetRetryPolicy(service.RetryPolicy{Max: *retries})

	switch verb {
	case "status":
		st, err := c.Status()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cluster    : %s (%d nodes)\n", st.Cluster, st.Nodes)
		fmt.Printf("sim time   : %.1fs\n", st.SimSeconds)
		fmt.Printf("epoch      : %d\n", st.Epoch)
		fmt.Printf("apps       : %s\n", strings.Join(st.Apps, ", "))
		fmt.Printf("avail CPU  : %s\n", fmtFloats(st.AvailCPU))
		fmt.Printf("NIC util   : %s\n", fmtFloats(st.NICUtil))
	case "evaluate":
		if *app == "" || len(mappings) != 1 {
			log.Fatal("evaluate needs -app and exactly one -mapping")
		}
		if *explain {
			r, err := c.Explain(*app, mappings[0])
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(r.Text)
			break
		}
		r, err := c.Evaluate(*app, mappings[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted execution time: %.3fs (critical rank %d)\n", r.Seconds, r.Critical)
		if r.TraceID != "" {
			fmt.Printf("trace: %s\n", r.TraceID)
		}
		if r.Degraded {
			fmt.Printf("DEGRADED: stale monitoring data on nodes %v; prediction used profile-only fallback\n", r.StaleNodes)
		}
	case "compare":
		if *app == "" || len(mappings) < 2 {
			log.Fatal("compare needs -app and at least two -mapping flags")
		}
		r, err := c.Compare(*app, mappings)
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range r.Seconds {
			marker := " "
			if i == r.Best {
				marker = "*"
			}
			note := ""
			if i < len(r.Degraded) && r.Degraded[i] {
				note = fmt.Sprintf("  [degraded: stale nodes %v]", r.StaleNodes[i])
			}
			fmt.Printf("%s mapping %v: %.3fs%s\n", marker, mappings[i], s, note)
		}
		if r.TraceID != "" {
			fmt.Printf("trace: %s\n", r.TraceID)
		}
	case "schedule":
		if *app == "" || *pool == "" {
			log.Fatal("schedule needs -app and -pool")
		}
		ids, err := parseIDList(*pool)
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.Schedule(*app, *alg, ids, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mapping   : %v\n", r.Mapping)
		fmt.Printf("predicted : %.3fs\n", r.Predicted)
		fmt.Printf("evals     : %d\n", r.Evaluations)
		fmt.Printf("scheduler : %dµs\n", r.SchedulerMicros)
		if r.TraceID != "" {
			fmt.Printf("trace     : %s\n", r.TraceID)
		}
		if r.Degraded {
			fmt.Printf("DEGRADED  : stale monitoring data on nodes %v; prediction used profile-only fallback\n", r.StaleNodes)
		}
	case "advance":
		r, err := c.Advance(*seconds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sim time now %.1fs (epoch %d)\n", r.SimSeconds, r.Epoch)
	case "decisions":
		r, err := c.Decisions(*n, *kind, *app, *traceID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d record(s) shown, %d recorded since start\n", len(r.Decisions), r.Total)
		for _, d := range r.Decisions {
			printDecision(d)
		}
	case "metrics":
		r, err := c.Metrics(*format)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			fmt.Println()
		}
	default:
		usage()
	}
}

// printDecision renders one flight-recorder record in a compact
// one-decision-per-paragraph form.
func printDecision(d obs.Decision) {
	fmt.Printf("%s  %-8s %-10s trace=%s epoch=%d\n",
		d.Time.Format("15:04:05.000"), d.Kind, d.App, orDash(d.TraceID), d.Epoch)
	if d.Algorithm != "" {
		fmt.Printf("  alg=%s seed=%d evals=%d scheduler=%dµs\n",
			d.Algorithm, d.Seed, d.Evaluations, d.SchedulerMicros)
	}
	if d.CacheLookups > 0 {
		fmt.Printf("  cache: %d/%d hit\n", d.CacheHits, d.CacheLookups)
	}
	if d.Coalesced {
		fmt.Printf("  coalesced: joined in-flight search of trace %s\n", orDash(d.LeaderTraceID))
	}
	if len(d.Mapping) > 0 {
		fmt.Printf("  mapping=%v predicted=%.3fs\n", d.Mapping, d.Predicted)
	}
	if d.Degraded {
		fmt.Printf("  DEGRADED: stale nodes %v\n", d.StaleNodes)
	}
	if d.Err != "" {
		fmt.Printf("  error: %s\n", d.Err)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fmtFloats(xs []float64) string {
	var parts []string
	for _, x := range xs {
		parts = append(parts, fmt.Sprintf("%.2f", x))
	}
	return strings.Join(parts, " ")
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cbesctl [-addr host:port] status|evaluate|compare|schedule|advance|metrics|decisions [flags]")
	os.Exit(2)
}
