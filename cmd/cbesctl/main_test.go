package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseIDList(t *testing.T) {
	cases := map[string][]int{
		"0":          {0},
		"0,3,5":      {0, 3, 5},
		"2-5":        {2, 3, 4, 5},
		"0-2,7,9-10": {0, 1, 2, 7, 9, 10},
		" 1 , 2 ":    {1, 2},
	}
	for in, want := range cases {
		got, err := parseIDList(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%q = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "5-2", "1-", "-3", ","} {
		if _, err := parseIDList(bad); err == nil {
			t.Fatalf("%q should error", bad)
		}
	}
}

func TestFilterMetricsProm(t *testing.T) {
	text := "# HELP cbes_accuracy_joined_total Joined outcomes.\n" +
		"# TYPE cbes_accuracy_joined_total counter\n" +
		"cbes_accuracy_joined_total 3\n" +
		"# HELP cbes_rpc_requests_total RPC requests.\n" +
		"# TYPE cbes_rpc_requests_total counter\n" +
		"cbes_rpc_requests_total{method=\"Evaluate\"} 12\n" +
		"cbes_accuracy_pending 1\n"
	got := filterMetricsProm(text, "cbes_accuracy")
	want := "# HELP cbes_accuracy_joined_total Joined outcomes.\n" +
		"# TYPE cbes_accuracy_joined_total counter\n" +
		"cbes_accuracy_joined_total 3\n" +
		"cbes_accuracy_pending 1\n"
	if got != want {
		t.Errorf("filterMetricsProm:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if out := filterMetricsProm(text, ""); out != text {
		t.Error("empty prefix should keep everything")
	}
	if out := filterMetricsProm(text, "nope"); out != "" {
		t.Errorf("unmatched prefix kept %q", out)
	}
}

func TestFilterMetricsJSON(t *testing.T) {
	text := `{"cbes_accuracy_joined_total": 3, "cbes_rpc_requests_total": {"Evaluate": 12}}`
	got, err := filterMetricsJSON(text, "cbes_accuracy")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "cbes_accuracy_joined_total") || strings.Contains(got, "cbes_rpc") {
		t.Errorf("filtered JSON = %s", got)
	}
	if _, err := filterMetricsJSON("not json", "x"); err == nil {
		t.Error("invalid JSON should error")
	}
}
