package main

import (
	"reflect"
	"testing"
)

func TestParseIDList(t *testing.T) {
	cases := map[string][]int{
		"0":          {0},
		"0,3,5":      {0, 3, 5},
		"2-5":        {2, 3, 4, 5},
		"0-2,7,9-10": {0, 1, 2, 7, 9, 10},
		" 1 , 2 ":    {1, 2},
	}
	for in, want := range cases {
		got, err := parseIDList(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%q = %v, want %v", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "5-2", "1-", "-3", ","} {
		if _, err := parseIDList(bad); err == nil {
			t.Fatalf("%q should error", bad)
		}
	}
}
