// Command benchjson converts `go test -bench` text output into a stable
// machine-readable JSON document, so benchmark runs can be archived and
// diffed across commits without scraping ad-hoc text.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o BENCH_cbes.json
//
// Lines that are not benchmark results (PASS, ok, compile noise) pass
// through to stderr untouched, so the tool can sit at the end of a pipe
// without hiding failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's parsed measurements. Only NsPerOp is
// always present; the rest appear when -benchmem or b.ReportMetric
// produced them.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// EvalsPerSec is the CBES scheduler suite's custom throughput metric
	// (mapping evaluations per second, emitted via b.ReportMetric).
	EvalsPerSec float64 `json:"evals_per_sec,omitempty"`
	// Extra collects any other custom unit → value pairs verbatim.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_cbes.json", "output file; - writes to stdout")
	flag.Parse()

	results := make(map[string]*Result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		// Same benchmark can appear once per package run under ./...;
		// keep the fastest sample (steadiest machine state).
		if prev, dup := results[r.Name]; !dup || r.NsPerOp < prev.NsPerOp {
			results[r.Name] = r
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	sorted := make([]*Result, 0, len(results))
	for _, r := range results {
		sorted = append(sorted, r)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	enc, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(sorted), *out)
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkCounterInc-8   135640867     8.533 ns/op    0 B/op    0 allocs/op
//
// Measurements come in trailing "<value> <unit>" pairs.
func parseLine(line string) (*Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return nil, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, false
	}
	r := &Result{Name: trimProcSuffix(f[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "evals/s":
			r.EvalsPerSec = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, seen
}

// trimProcSuffix strips the trailing GOMAXPROCS marker ("-8") so names
// are stable across machines.
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
