// Command benchjson converts `go test -bench` text output into a stable
// machine-readable JSON document, so benchmark runs can be archived and
// diffed across commits without scraping ad-hoc text.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | benchjson -o BENCH_cbes.json
//	benchjson -diff old.json new.json [-threshold 20] [-bytes-threshold 20]
//
// In -diff mode the tool compares two archived snapshots, prints the
// per-benchmark ns/op, B/op, and allocs/op deltas, and exits non-zero when
// any benchmark regressed by more than -threshold percent — the regression
// gate behind `make bench-compare`. Memory regressions (B/op) gate through
// -bytes-threshold, which defaults to the time threshold; the separate knob
// exists because bytes/op is deterministic while ns/op is noisy, so CI can
// hold memory to a tighter bound.
//
// Lines that are not benchmark results (PASS, ok, compile noise) pass
// through to stderr untouched, so the tool can sit at the end of a pipe
// without hiding failures.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's parsed measurements. Only NsPerOp is
// always present; the rest appear when -benchmem or b.ReportMetric
// produced them.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// EvalsPerSec is the CBES scheduler suite's custom throughput metric
	// (mapping evaluations per second, emitted via b.ReportMetric).
	EvalsPerSec float64 `json:"evals_per_sec,omitempty"`
	// Extra collects any other custom unit → value pairs verbatim.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_cbes.json", "output file; - writes to stdout")
	diff := flag.Bool("diff", false, "compare two snapshot files: benchjson -diff old.json new.json")
	threshold := flag.Float64("threshold", 20, "regression threshold in percent for -diff (ns/op and allocs/op)")
	bytesThreshold := flag.Float64("bytes-threshold", -1, "regression threshold in percent for B/op in -diff (-1: use -threshold)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			log.Fatal("benchjson: -diff needs exactly two files: old.json new.json")
		}
		oldR, err := loadResults(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		newR, err := loadResults(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		bt := *bytesThreshold
		if bt < 0 {
			bt = *threshold
		}
		report, regressed := diffResults(oldR, newR, *threshold, bt)
		fmt.Print(report)
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% threshold\n", *threshold)
			os.Exit(1)
		}
		return
	}

	sorted, err := readResults(os.Stdin, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(sorted), *out)
}

// readResults parses bench output from r, echoing non-benchmark lines to
// passthrough, and returns the deduplicated results sorted by name.
func readResults(r io.Reader, passthrough io.Writer) ([]*Result, error) {
	results := make(map[string]*Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		res, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(passthrough, line)
			continue
		}
		// Same benchmark can appear once per package run under ./...;
		// keep the fastest sample (steadiest machine state).
		if prev, dup := results[res.Name]; !dup || res.NsPerOp < prev.NsPerOp {
			results[res.Name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sorted := make([]*Result, 0, len(results))
	for _, res := range results {
		sorted = append(sorted, res)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	return sorted, nil
}

// loadResults reads an archived snapshot written by the default mode.
func loadResults(path string) ([]*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []*Result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// deltaPct is the percentage change from old to new; +Inf-like cases (old
// zero) report 0 so newly-instrumented metrics don't trip the gate.
func deltaPct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// gatedExtras maps custom-metric keys to their regression direction:
// +1 gates on increase (latencies — lower is better), -1 gates on
// decrease (throughput — higher is better). Extra keys not listed are
// informational only. The service benchmark's RPC throughput and tail
// latency ride through here.
var gatedExtras = map[string]int{
	"rps":    -1,
	"p99_ms": +1,
}

// diffResults renders a per-benchmark comparison and reports whether any
// benchmark's ns/op or allocs/op grew past thresholdPct, its B/op grew
// past bytesThresholdPct — or a gated custom metric (RPC throughput, p99
// latency) moved the wrong way past thresholdPct. Benchmarks present on
// only one side are listed but never gate, and deltaPct's old-zero rule
// keeps snapshots predating -benchmem bytes from tripping the memory gate.
func diffResults(oldR, newR []*Result, thresholdPct, bytesThresholdPct float64) (string, bool) {
	oldBy := make(map[string]*Result, len(oldR))
	for _, r := range oldR {
		oldBy[r.Name] = r
	}
	var sb strings.Builder
	regressed := false
	fmt.Fprintf(&sb, "%-40s %14s %14s %8s %12s %12s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ%", "old B/op", "new B/op", "Δ%", "old allocs", "new allocs", "Δ%")
	seen := make(map[string]bool, len(newR))
	for _, n := range newR {
		seen[n.Name] = true
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-40s %14s %14.0f %8s %12s %12.0f %8s %12s %12.0f %8s  (new)\n",
				n.Name, "-", n.NsPerOp, "-", "-", n.BytesPerOp, "-", "-", n.AllocsPerOp, "-")
			continue
		}
		dNs := deltaPct(o.NsPerOp, n.NsPerOp)
		dBy := deltaPct(o.BytesPerOp, n.BytesPerOp)
		dAl := deltaPct(o.AllocsPerOp, n.AllocsPerOp)
		mark := ""
		if dNs > thresholdPct || dAl > thresholdPct || dBy > bytesThresholdPct {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(&sb, "%-40s %14.0f %14.0f %+7.1f%% %12.0f %12.0f %+7.1f%% %12.0f %12.0f %+7.1f%%%s\n",
			n.Name, o.NsPerOp, n.NsPerOp, dNs, o.BytesPerOp, n.BytesPerOp, dBy, o.AllocsPerOp, n.AllocsPerOp, dAl, mark)
		for _, key := range sortedKeys(n.Extra) {
			dir, gated := gatedExtras[key]
			oldV, hasOld := o.Extra[key]
			if !gated || !hasOld {
				continue
			}
			d := deltaPct(oldV, n.Extra[key])
			mark := ""
			if float64(dir)*d > thresholdPct {
				mark = "  REGRESSION"
				regressed = true
			}
			fmt.Fprintf(&sb, "%-40s %14.2f %14.2f %+7.1f%%%s\n",
				"  └ "+key, oldV, n.Extra[key], d, mark)
		}
	}
	for _, o := range oldR {
		if !seen[o.Name] {
			fmt.Fprintf(&sb, "%-40s %14.0f %14s %8s %12.0f %12s %8s %12.0f %12s %8s  (removed)\n",
				o.Name, o.NsPerOp, "-", "-", o.BytesPerOp, "-", "-", o.AllocsPerOp, "-", "-")
		}
	}
	return sb.String(), regressed
}

// sortedKeys returns m's keys in stable order for deterministic output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkCounterInc-8   135640867     8.533 ns/op    0 B/op    0 allocs/op
//
// Measurements come in trailing "<value> <unit>" pairs.
func parseLine(line string) (*Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return nil, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil, false
	}
	r := &Result{Name: trimProcSuffix(f[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp, seen = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "evals/s":
			r.EvalsPerSec = v
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[f[i+1]] = v
		}
	}
	return r, seen
}

// trimProcSuffix strips the trailing GOMAXPROCS marker ("-8") so names
// are stable across machines.
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
