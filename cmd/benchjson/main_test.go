package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkApplicationRun-8   	       5	 193456789 ns/op	  832424 B/op	   64621 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid benchmark line")
	}
	if r.Name != "BenchmarkApplicationRun" {
		t.Errorf("Name = %q", r.Name)
	}
	if r.Iterations != 5 || r.NsPerOp != 193456789 || r.BytesPerOp != 832424 || r.AllocsPerOp != 64621 {
		t.Errorf("parsed %+v", r)
	}

	if _, ok := parseLine("ok  	cbes/internal/des	0.4s"); ok {
		t.Error("parseLine accepted a non-benchmark line")
	}
	if _, ok := parseLine("PASS"); ok {
		t.Error("parseLine accepted PASS")
	}

	r, ok = parseLine("BenchmarkEval-4  100  5.5 ns/op  1234 evals/s  7 widgets/op")
	if !ok {
		t.Fatal("parseLine rejected custom-metric line")
	}
	if r.EvalsPerSec != 1234 || r.Extra["widgets/op"] != 7 {
		t.Errorf("custom metrics: %+v", r)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo-128":    "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
		"BenchmarkFoo/sub-4":  "BenchmarkFoo/sub",
		"BenchmarkFoo/case-1": "BenchmarkFoo/case",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReadResults(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"BenchmarkA-8  10  200 ns/op  5 allocs/op",
		"BenchmarkA-8  10  100 ns/op  5 allocs/op", // duplicate: keep fastest
		"BenchmarkB-8  10  300 ns/op",
		"PASS",
	}, "\n")
	var passthrough strings.Builder
	rs, err := readResults(strings.NewReader(input), &passthrough)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
	if rs[0].Name != "BenchmarkA" || rs[0].NsPerOp != 100 {
		t.Errorf("dedup kept %+v, want the 100 ns/op sample", rs[0])
	}
	if rs[1].Name != "BenchmarkB" {
		t.Errorf("results not sorted: %+v", rs)
	}
	if !strings.Contains(passthrough.String(), "goos: linux") || !strings.Contains(passthrough.String(), "PASS") {
		t.Errorf("non-benchmark lines not passed through: %q", passthrough.String())
	}
}

func TestDiffResults(t *testing.T) {
	oldR := []*Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 500},
	}

	t.Run("improvement passes", func(t *testing.T) {
		newR := []*Result{
			{Name: "BenchmarkA", NsPerOp: 500, AllocsPerOp: 50},
			{Name: "BenchmarkB", NsPerOp: 1100, AllocsPerOp: 100}, // +10%, under threshold
			{Name: "BenchmarkFresh", NsPerOp: 42},
		}
		report, regressed := diffResults(oldR, newR, 20, 20)
		if regressed {
			t.Fatalf("flagged regression on improvements:\n%s", report)
		}
		if !strings.Contains(report, "(new)") || !strings.Contains(report, "(removed)") {
			t.Errorf("report missing one-sided markers:\n%s", report)
		}
	})

	t.Run("ns regression fails", func(t *testing.T) {
		newR := []*Result{{Name: "BenchmarkA", NsPerOp: 1500, AllocsPerOp: 100}}
		report, regressed := diffResults(oldR, newR, 20, 20)
		if !regressed {
			t.Fatalf("missed a +50%% ns/op regression:\n%s", report)
		}
		if !strings.Contains(report, "REGRESSION") {
			t.Errorf("report does not mark the regression:\n%s", report)
		}
	})

	t.Run("allocs regression fails", func(t *testing.T) {
		newR := []*Result{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 200}}
		if _, regressed := diffResults(oldR, newR, 20, 20); !regressed {
			t.Fatal("missed a +100% allocs/op regression")
		}
	})

	t.Run("bytes regression fails", func(t *testing.T) {
		oldB := []*Result{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1 << 20, AllocsPerOp: 100}}
		newB := []*Result{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 2 << 20, AllocsPerOp: 100}}
		report, regressed := diffResults(oldB, newB, 20, 20)
		if !regressed {
			t.Fatalf("missed a +100%% B/op regression:\n%s", report)
		}
	})

	t.Run("bytes threshold is independent", func(t *testing.T) {
		oldB := []*Result{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1000}}
		newB := []*Result{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1150}} // +15%
		if _, regressed := diffResults(oldB, newB, 20, 20); regressed {
			t.Fatal("+15% B/op tripped a 20% bytes gate")
		}
		if _, regressed := diffResults(oldB, newB, 20, 10); !regressed {
			t.Fatal("+15% B/op passed a 10% bytes gate")
		}
	})

	t.Run("bytes absent in old snapshot never gates", func(t *testing.T) {
		oldB := []*Result{{Name: "BenchmarkA", NsPerOp: 1000}}
		newB := []*Result{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 1 << 30}}
		if _, regressed := diffResults(oldB, newB, 20, 20); regressed {
			t.Fatal("newly-instrumented B/op tripped the gate")
		}
	})

	t.Run("zero old never gates", func(t *testing.T) {
		oldZ := []*Result{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 0}}
		newZ := []*Result{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 9}}
		if _, regressed := diffResults(oldZ, newZ, 20, 20); regressed {
			t.Fatal("zero-baseline allocs tripped the gate")
		}
	})
}

// The service benchmark's custom metrics gate directionally: throughput
// (rps) on decrease, tail latency (p99_ms) on increase. Other Extra keys
// stay informational.
func TestDiffGatedExtras(t *testing.T) {
	oldR := []*Result{{
		Name: "ServiceRPC/sharded", NsPerOp: 1000,
		Extra: map[string]float64{"rps": 50000, "p99_ms": 2.0, "hit_rate_pct": 95},
	}}

	t.Run("throughput drop fails", func(t *testing.T) {
		newR := []*Result{{
			Name: "ServiceRPC/sharded", NsPerOp: 1000,
			Extra: map[string]float64{"rps": 30000, "p99_ms": 2.0},
		}}
		report, regressed := diffResults(oldR, newR, 20, 20)
		if !regressed {
			t.Fatalf("missed a -40%% rps regression:\n%s", report)
		}
		if !strings.Contains(report, "rps") || !strings.Contains(report, "REGRESSION") {
			t.Errorf("report does not mark the rps regression:\n%s", report)
		}
	})

	t.Run("throughput gain passes", func(t *testing.T) {
		newR := []*Result{{
			Name: "ServiceRPC/sharded", NsPerOp: 1000,
			Extra: map[string]float64{"rps": 90000, "p99_ms": 2.0},
		}}
		if report, regressed := diffResults(oldR, newR, 20, 20); regressed {
			t.Fatalf("flagged an rps improvement as regression:\n%s", report)
		}
	})

	t.Run("p99 growth fails", func(t *testing.T) {
		newR := []*Result{{
			Name: "ServiceRPC/sharded", NsPerOp: 1000,
			Extra: map[string]float64{"rps": 50000, "p99_ms": 3.0},
		}}
		if _, regressed := diffResults(oldR, newR, 20, 20); !regressed {
			t.Fatal("missed a +50% p99_ms regression")
		}
	})

	t.Run("informational extras never gate", func(t *testing.T) {
		newR := []*Result{{
			Name: "ServiceRPC/sharded", NsPerOp: 1000,
			Extra: map[string]float64{"rps": 50000, "p99_ms": 2.0, "hit_rate_pct": 10},
		}}
		if _, regressed := diffResults(oldR, newR, 20, 20); regressed {
			t.Fatal("informational extra tripped the gate")
		}
	})
}
