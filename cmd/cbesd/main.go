// Command cbesd runs the CBES service daemon: it boots a virtual
// heterogeneous testbed, performs (or loads) the off-line calibration,
// profiles the requested applications, and then serves mapping-evaluation
// and scheduling requests over TCP (net/rpc).
//
// Usage:
//
//	cbesd [-listen 127.0.0.1:7411] [-cluster grove|centurion] [-db ./cbesdb]
//	      [-apps lu.B.8,aztec.8,...]
//
// Use cbesctl to query the daemon.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/db"
	"cbes/internal/service"
	"cbes/internal/workloads"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7411", "address to serve on")
	clusterName := flag.String("cluster", "grove", "testbed: grove or centurion")
	dbDir := flag.String("db", "./cbesdb", "CBES database directory (models/profiles cache)")
	apps := flag.String("apps", "lu.B.8,aztec.8,hpl.5000.8", "comma-separated application models to profile")
	flag.Parse()

	var topo *cluster.Topology
	switch *clusterName {
	case "grove":
		topo = cluster.NewOrangeGrove()
	case "centurion":
		topo = cluster.NewCenturion()
	default:
		log.Fatalf("unknown cluster %q", *clusterName)
	}

	store, err := db.Open(*dbDir)
	if err != nil {
		log.Fatal(err)
	}

	sys := cbes.NewSystem(topo, cbes.Config{})
	defer sys.Close()

	// Load or perform the off-line calibration.
	if model, err := store.LoadModel(topo.Name); err == nil {
		if err := sys.UseModel(model); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded calibrated model for %s from %s", topo.Name, store.Dir())
	} else {
		log.Printf("calibrating %s (%d nodes)...", topo.Name, topo.NumNodes())
		model := sys.Calibrate(bench.Options{})
		if err := store.SaveModel(model); err != nil {
			log.Printf("warning: could not persist model: %v", err)
		}
		log.Printf("calibration done: %d path classes", len(model.Classes))
	}

	// Profile the requested applications (cached in the store).
	profMapping := defaultProfilingNodes(topo)
	for _, name := range strings.Split(*apps, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		prog, err := workloads.Lookup(name)
		if err != nil {
			log.Fatalf("%v (kinds: %s; e.g. lu.B.8, hpl.10000.8, smg2000.50.8)",
				err, strings.Join(workloads.Kinds(), ", "))
		}
		if p, err := store.LoadProfile(name); err == nil && p.Cluster == topo.Name {
			sys.RegisterProfile(p)
			log.Printf("loaded profile %s from store", name)
			continue
		}
		log.Printf("profiling %s on %d nodes...", name, prog.Ranks)
		p, err := sys.Profile(prog, profMapping[:prog.Ranks])
		if err != nil {
			log.Fatal(err)
		}
		if err := store.SaveProfile(p); err != nil {
			log.Printf("warning: could not persist profile: %v", err)
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cbesd: serving %s (%d nodes) on %s, apps: %s\n",
		topo.Name, topo.NumNodes(), l.Addr(), strings.Join(sys.Apps(), ", "))
	log.Fatal(service.Serve(sys, l))
}

// defaultProfilingNodes picks a deterministic profiling mapping: the
// fastest architecture's nodes first.
func defaultProfilingNodes(topo *cluster.Topology) []int {
	var nodes []int
	for _, a := range []cluster.Arch{cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC} {
		nodes = append(nodes, topo.NodesByArch(a)...)
	}
	if len(nodes) == 0 {
		for i := 0; i < topo.NumNodes(); i++ {
			nodes = append(nodes, i)
		}
	}
	return nodes
}
