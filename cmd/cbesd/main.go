// Command cbesd runs the CBES service daemon: it boots a virtual
// heterogeneous testbed, performs (or loads) the off-line calibration,
// profiles the requested applications, and then serves mapping-evaluation
// and scheduling requests over TCP (net/rpc).
//
// Usage:
//
//	cbesd [-listen 127.0.0.1:7411] [-cluster grove|centurion|test] [-db ./cbesdb]
//	      [-apps lu.B.8,aztec.8,...] [-debug-listen 127.0.0.1:7412]
//	      [-span-log spans.jsonl] [-max-clients 64] [-drain-timeout 5s]
//	      [-request-timeout 30s] [-cache-size 4096] [-max-inflight N]
//	      [-admission-target 500ms] [-fault-crashes N] [-fault-degrades N]
//	      [-fault-drops N] [-fault-stalls N] [-fault-seed S] [-fault-horizon 5m]
//
// With -debug-listen set, the daemon also serves an HTTP observability
// endpoint: /metrics (Prometheus text exposition), /debug/vars (expvar
// JSON), /debug/spans (recent traced spans), /debug/accuracy (the
// predicted-vs-actual calibration ledger, JSON or ?format=csv), /healthz
// (liveness), /readyz (readiness — 503 while the monitored cluster has
// down nodes; 200 with a warning line under calibration drift or
// sustained admission shedding), and the standard /debug/pprof profiles.
// The same metrics are available over RPC via `cbesctl metrics`, so the
// control plane can scrape without HTTP.
//
// Overload protection (DESIGN.md §15) is on by default: an adaptive
// limiter bounds concurrently computing requests (-max-inflight pins the
// limit; 0 adapts around a p99 target of -admission-target; negative
// disables), shed Evaluate/Compare requests brown out to profile-only
// answers, and propagated client deadlines (cbesctl -deadline) abandon
// doomed work mid-search.
//
// The -fault-* flags arm a deterministic seeded fault schedule against the
// simulated cluster (node crashes, link degradations, sensor dropouts,
// monitor stalls — each paired with its recovery) for exercising
// degraded-mode behaviour end to end.
//
// SIGINT/SIGTERM shut the daemon down cleanly: the listeners close, the
// RPC loop drains in-flight requests (bounded by -drain-timeout), and the
// simulation engine is reaped.
//
// Use cbesctl to query the daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cbes"
	"cbes/internal/accuracy"
	"cbes/internal/admission"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/db"
	"cbes/internal/des"
	"cbes/internal/faults"
	"cbes/internal/monitor"
	"cbes/internal/obs"
	"cbes/internal/service"
	"cbes/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run carries the daemon lifecycle so every defer (notably sys.Close,
// which reaps the DES engine goroutines) executes on all exit paths —
// log.Fatal in main would skip them.
func run() error {
	listen := flag.String("listen", "127.0.0.1:7411", "address to serve RPC on")
	debugListen := flag.String("debug-listen", "", "address for the HTTP debug endpoint (/metrics, /healthz, /readyz, pprof); empty disables")
	spanLog := flag.String("span-log", "", "append traced spans as JSONL to this file; empty disables")
	traceSample := flag.Int("trace-sample", 1, "head-sample 1 trace in N (1 keeps all; errored or slow spans are kept regardless)")
	traceSlow := flag.Duration("trace-slow", 0, "tail-keep cutoff: spans at least this slow always record (0 selects the 100ms default)")
	clusterName := flag.String("cluster", "grove", "topology spec: "+cluster.SpecHelp)
	dbDir := flag.String("db", "./cbesdb", "CBES database directory (models/profiles cache)")
	apps := flag.String("apps", "lu.B.8,aztec.8,hpl.5000.8", "comma-separated application models to profile")
	maxClients := flag.Int("max-clients", 64, "maximum concurrently served RPC connections")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "shutdown budget for draining in-flight requests")
	requestTimeout := flag.Duration("request-timeout", service.DefaultRequestTimeout, "per-request engine-lock queueing bound (busy error on expiry)")
	cacheSize := flag.Int("cache-size", service.DefaultCacheSize, "prediction-cache entries (negative disables caching)")
	maxInflight := flag.Int("max-inflight", 0, "admission limit on concurrently computing requests (0 adaptive, negative disables admission control)")
	admissionTarget := flag.Duration("admission-target", 500*time.Millisecond, "p99 latency the adaptive admission limiter steers toward")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the injected fault schedule")
	faultCrashes := flag.Int("fault-crashes", 0, "node crash/recover pairs to inject (0 disables)")
	faultDegrades := flag.Int("fault-degrades", 0, "link degrade/restore pairs to inject")
	faultDrops := flag.Int("fault-drops", 0, "sensor drop/restore pairs to inject")
	faultStalls := flag.Int("fault-stalls", 0, "monitor stalls to inject")
	faultHorizon := flag.Duration("fault-horizon", 5*time.Minute, "simulated-time window the fault schedule spans")
	flag.Parse()

	topo, err := cluster.FromSpec(*clusterName)
	if err != nil {
		return err
	}

	// Topology-shape gauges: exported before serving starts so operators
	// can see at a glance how large the simulated fabric is and whether
	// routes are table-backed (the 2005 testbeds) or computed algebraically
	// (structured 1k/5k topologies). Visible via /debug/vars and /metrics.
	reg := obs.Default()
	reg.Gauge("cbes_topology_nodes", "Nodes in the simulated topology").Set(float64(topo.NumNodes()))
	reg.Gauge("cbes_topology_switches", "Switches in the simulated topology").Set(float64(len(topo.Switches)))
	reg.Gauge("cbes_topology_links", "Links in the simulated topology").Set(float64(len(topo.Links)))
	routeTable := 0.0
	if topo.RouteMemoryMode() == "table" {
		routeTable = 1
	}
	reg.Gauge("cbes_topology_route_table", "1 if routes come from a stored table, 0 if computed algebraically").Set(routeTable)

	store, err := db.Open(*dbDir)
	if err != nil {
		return err
	}

	if *spanLog != "" {
		f, err := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		obs.DefaultTracer().SetSink(f)
	}
	obs.DefaultTracer().SetSampling(*traceSample, *traceSlow)

	sys := cbes.NewSystem(topo, cbes.Config{})
	defer sys.Close()

	// Load or perform the off-line calibration.
	if model, err := store.LoadModel(topo.Name); err == nil {
		if err := sys.UseModel(model); err != nil {
			return err
		}
		log.Printf("loaded calibrated model for %s from %s", topo.Name, store.Dir())
	} else {
		log.Printf("calibrating %s (%d nodes)...", topo.Name, topo.NumNodes())
		model := sys.Calibrate(bench.Options{})
		if err := store.SaveModel(model); err != nil {
			log.Printf("warning: could not persist model: %v", err)
		}
		log.Printf("calibration done: %d path classes", len(model.Classes))
	}

	// Profile the requested applications (cached in the store).
	profMapping := defaultProfilingNodes(topo)
	for _, name := range strings.Split(*apps, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		prog, err := workloads.Lookup(name)
		if err != nil {
			return fmt.Errorf("%v (kinds: %s; e.g. lu.B.8, hpl.10000.8, smg2000.50.8)",
				err, strings.Join(workloads.Kinds(), ", "))
		}
		if p, err := store.LoadProfile(name); err == nil && p.Cluster == topo.Name {
			sys.RegisterProfile(p)
			log.Printf("loaded profile %s from store", name)
			continue
		}
		log.Printf("profiling %s on %d nodes...", name, prog.Ranks)
		p, err := sys.Profile(prog, profMapping[:prog.Ranks])
		if err != nil {
			return err
		}
		if err := store.SaveProfile(p); err != nil {
			log.Printf("warning: could not persist profile: %v", err)
		}
	}

	// Optional deterministic fault injection against the simulated cluster:
	// a seeded schedule of crashes, link degradations, sensor dropouts, and
	// monitor stalls (each disruption paired with its recovery) for
	// exercising degraded-mode behaviour end to end.
	if *faultCrashes > 0 || *faultDegrades > 0 || *faultDrops > 0 || *faultStalls > 0 {
		sched := faults.RandomSchedule(topo, faults.RandomConfig{
			Seed:        *faultSeed,
			Horizon:     des.FromSeconds(faultHorizon.Seconds()),
			Crashes:     *faultCrashes,
			Degrades:    *faultDegrades,
			SensorDrops: *faultDrops,
			Stalls:      *faultStalls,
		})
		if err := sys.Faults().Install(sched); err != nil {
			return err
		}
		log.Printf("cbesd: armed %d-event fault schedule (seed %d, horizon %v)",
			len(sched), *faultSeed, *faultHorizon)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}

	// The admission limiter is built here (not inside ServeWith) so the
	// readiness probe keeps a handle for shed-rate reporting.
	var lim *admission.Limiter
	if *maxInflight >= 0 {
		lim = admission.New(admission.Config{
			Initial:   *maxInflight,
			Max:       *maxInflight,
			TargetP99: *admissionTarget,
		})
	}

	// Debug HTTP endpoint: metrics, expvar, spans, health, pprof.
	var debugSrv *http.Server
	if *debugListen != "" {
		dl, err := net.Listen("tcp", *debugListen)
		if err != nil {
			l.Close()
			return err
		}
		probes := &probes{sys: sys, lim: lim}
		mux := obs.DebugMux(obs.Default(), obs.DefaultTracer(), obs.DefaultRecorder(), probes.live, probes.ready)
		mux.Handle("/debug/accuracy", accuracy.Handler(accuracy.Default()))
		debugSrv = &http.Server{Handler: mux}
		go func() {
			if err := debugSrv.Serve(dl); err != nil && err != http.ErrServerClosed {
				log.Printf("cbesd: debug endpoint: %v", err)
			}
		}()
		log.Printf("cbesd: debug endpoint on http://%s (/metrics /debug/vars /debug/spans /debug/trace /debug/decisions /debug/accuracy /healthz /readyz /debug/pprof)", dl.Addr())
	}

	fmt.Printf("cbesd: serving %s (%d nodes) on %s, apps: %s\n",
		topo.Name, topo.NumNodes(), l.Addr(), strings.Join(sys.Apps(), ", "))

	// Serve until the RPC loop fails or a termination signal arrives.
	// Closing the listener makes Serve return nil (the clean-exit
	// contract), after which the deferred sys.Close reaps the engine.
	errc := make(chan error, 1)
	go func() {
		errc <- service.ServeWith(sys, l, service.ServeOptions{
			MaxClients:       *maxClients,
			DrainTimeout:     *drainTimeout,
			RequestTimeout:   *requestTimeout,
			CacheSize:        *cacheSize,
			Limiter:          lim,
			DisableAdmission: lim == nil,
		})
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err = <-errc:
	case sig := <-sigc:
		log.Printf("cbesd: %v: shutting down", sig)
		l.Close()
		err = <-errc
	}
	if debugSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		debugSrv.Shutdown(ctx) //nolint:errcheck // best-effort drain
		cancel()
	}
	return err
}

// probes backs /healthz (liveness) and /readyz (readiness). Liveness is
// "the process can serve at all": boot completed, model installed —
// restart the daemon if this fails. Readiness is "route traffic here right
// now": live AND the monitored cluster has no down nodes, so a degraded
// cluster takes the daemon out of rotation (load balancers stop sending
// new work) without killing it — it keeps answering in-flight and
// diagnostic requests, serving degraded-flagged predictions.
type probes struct {
	sys *cbes.System
	lim *admission.Limiter // nil when admission control is disabled
}

func (p *probes) live() error {
	if p.sys.Model == nil {
		return fmt.Errorf("not calibrated")
	}
	return nil
}

func (p *probes) ready() error {
	if err := p.live(); err != nil {
		return err
	}
	// LastHealthGauges reads atomics published at Snapshot time — no
	// engine lock, so the probe cannot race RPC handlers or block behind
	// a long-running Schedule.
	if down, suspect := monitor.LastHealthGauges(); down > 0 {
		return fmt.Errorf("degraded: %d nodes down, %d suspect", down, suspect)
	}
	// Sustained shedding is a warning, not a failure: the daemon is
	// protecting itself and still answering (brownout where possible), so
	// it stays in rotation, but operators see the overload on the probe.
	if p.lim != nil {
		if ratio := p.lim.ShedRatio(); ratio > 0.05 {
			return obs.Warnf("admission: shedding %.0f%% of requests (limit %d, inflight %d)",
				ratio*100, p.lim.Limit(), p.lim.Inflight())
		}
	}
	// Calibration drift is a warning, not a failure: predictions are still
	// served (with their error bands), so the daemon stays in rotation,
	// but operators see it on the probe and cbes_calibration_ok flips.
	if led := accuracy.Default(); !led.CalibrationOK() {
		st := led.Status()
		return obs.Warnf("calibration drift: recent MAPE %.1f%% (n=%d) vs baseline %.1f%% (n=%d)",
			st.WindowMAPEPct, st.WindowN, st.BaselineMAPEPct, st.BaselineN)
	}
	return nil
}

// defaultProfilingNodes picks a deterministic profiling mapping: the
// fastest architecture's nodes first.
func defaultProfilingNodes(topo *cluster.Topology) []int {
	var nodes []int
	for _, a := range []cluster.Arch{cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC} {
		nodes = append(nodes, topo.NodesByArch(a)...)
	}
	if len(nodes) == 0 {
		for i := 0; i < topo.NumNodes(); i++ {
			nodes = append(nodes, i)
		}
	}
	return nodes
}
