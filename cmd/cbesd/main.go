// Command cbesd runs the CBES service daemon: it boots a virtual
// heterogeneous testbed, performs (or loads) the off-line calibration,
// profiles the requested applications, and then serves mapping-evaluation
// and scheduling requests over TCP (net/rpc).
//
// Usage:
//
//	cbesd [-listen 127.0.0.1:7411] [-cluster grove|centurion|test] [-db ./cbesdb]
//	      [-apps lu.B.8,aztec.8,...] [-debug-listen 127.0.0.1:7412]
//	      [-span-log spans.jsonl]
//
// With -debug-listen set, the daemon also serves an HTTP observability
// endpoint: /metrics (Prometheus text exposition), /debug/vars (expvar
// JSON), /debug/spans (recent traced spans), /healthz, and the standard
// /debug/pprof profiles. The same metrics are available over RPC via
// `cbesctl metrics`, so the control plane can scrape without HTTP.
//
// SIGINT/SIGTERM shut the daemon down cleanly: the listeners close, the
// RPC loop drains, and the simulation engine is reaped.
//
// Use cbesctl to query the daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/db"
	"cbes/internal/obs"
	"cbes/internal/service"
	"cbes/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run carries the daemon lifecycle so every defer (notably sys.Close,
// which reaps the DES engine goroutines) executes on all exit paths —
// log.Fatal in main would skip them.
func run() error {
	listen := flag.String("listen", "127.0.0.1:7411", "address to serve RPC on")
	debugListen := flag.String("debug-listen", "", "address for the HTTP debug endpoint (/metrics, /healthz, pprof); empty disables")
	spanLog := flag.String("span-log", "", "append traced spans as JSONL to this file; empty disables")
	clusterName := flag.String("cluster", "grove", "testbed: grove, centurion, or test (small 8-node topology)")
	dbDir := flag.String("db", "./cbesdb", "CBES database directory (models/profiles cache)")
	apps := flag.String("apps", "lu.B.8,aztec.8,hpl.5000.8", "comma-separated application models to profile")
	flag.Parse()

	var topo *cluster.Topology
	switch *clusterName {
	case "grove":
		topo = cluster.NewOrangeGrove()
	case "centurion":
		topo = cluster.NewCenturion()
	case "test":
		topo = cluster.NewTestTopology()
	default:
		return fmt.Errorf("unknown cluster %q", *clusterName)
	}

	store, err := db.Open(*dbDir)
	if err != nil {
		return err
	}

	if *spanLog != "" {
		f, err := os.OpenFile(*spanLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		obs.DefaultTracer().SetSink(f)
	}

	sys := cbes.NewSystem(topo, cbes.Config{})
	defer sys.Close()

	// Load or perform the off-line calibration.
	if model, err := store.LoadModel(topo.Name); err == nil {
		if err := sys.UseModel(model); err != nil {
			return err
		}
		log.Printf("loaded calibrated model for %s from %s", topo.Name, store.Dir())
	} else {
		log.Printf("calibrating %s (%d nodes)...", topo.Name, topo.NumNodes())
		model := sys.Calibrate(bench.Options{})
		if err := store.SaveModel(model); err != nil {
			log.Printf("warning: could not persist model: %v", err)
		}
		log.Printf("calibration done: %d path classes", len(model.Classes))
	}

	// Profile the requested applications (cached in the store).
	profMapping := defaultProfilingNodes(topo)
	for _, name := range strings.Split(*apps, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		prog, err := workloads.Lookup(name)
		if err != nil {
			return fmt.Errorf("%v (kinds: %s; e.g. lu.B.8, hpl.10000.8, smg2000.50.8)",
				err, strings.Join(workloads.Kinds(), ", "))
		}
		if p, err := store.LoadProfile(name); err == nil && p.Cluster == topo.Name {
			sys.RegisterProfile(p)
			log.Printf("loaded profile %s from store", name)
			continue
		}
		log.Printf("profiling %s on %d nodes...", name, prog.Ranks)
		p, err := sys.Profile(prog, profMapping[:prog.Ranks])
		if err != nil {
			return err
		}
		if err := store.SaveProfile(p); err != nil {
			log.Printf("warning: could not persist profile: %v", err)
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}

	// Debug HTTP endpoint: metrics, expvar, spans, health, pprof.
	var debugSrv *http.Server
	if *debugListen != "" {
		dl, err := net.Listen("tcp", *debugListen)
		if err != nil {
			l.Close()
			return err
		}
		ready := &readiness{sys: sys}
		debugSrv = &http.Server{Handler: obs.DebugMux(obs.Default(), obs.DefaultTracer(), ready.check)}
		go func() {
			if err := debugSrv.Serve(dl); err != nil && err != http.ErrServerClosed {
				log.Printf("cbesd: debug endpoint: %v", err)
			}
		}()
		log.Printf("cbesd: debug endpoint on http://%s (/metrics /debug/vars /debug/spans /healthz /debug/pprof)", dl.Addr())
	}

	fmt.Printf("cbesd: serving %s (%d nodes) on %s, apps: %s\n",
		topo.Name, topo.NumNodes(), l.Addr(), strings.Join(sys.Apps(), ", "))

	// Serve until the RPC loop fails or a termination signal arrives.
	// Closing the listener makes Serve return nil (the clean-exit
	// contract), after which the deferred sys.Close reaps the engine.
	errc := make(chan error, 1)
	go func() { errc <- service.Serve(sys, l) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err = <-errc:
	case sig := <-sigc:
		log.Printf("cbesd: %v: shutting down", sig)
		l.Close()
		err = <-errc
	}
	if debugSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		debugSrv.Shutdown(ctx) //nolint:errcheck // best-effort drain
		cancel()
	}
	return err
}

// readiness gates /healthz: the endpoint only starts once boot finished,
// so reporting healthy whenever at least one application is registered
// (or none were requested) is the honest liveness signal.
type readiness struct {
	sys *cbes.System
}

func (r *readiness) check() error {
	if r.sys.Model == nil {
		return fmt.Errorf("not calibrated")
	}
	return nil
}

// defaultProfilingNodes picks a deterministic profiling mapping: the
// fastest architecture's nodes first.
func defaultProfilingNodes(topo *cluster.Topology) []int {
	var nodes []int
	for _, a := range []cluster.Arch{cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC} {
		nodes = append(nodes, topo.NodesByArch(a)...)
	}
	if len(nodes) == 0 {
		for i := 0; i < topo.NumNodes(); i++ {
			nodes = append(nodes, i)
		}
	}
	return nodes
}
