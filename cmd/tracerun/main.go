// Command tracerun executes a workload model on a virtual testbed, prints
// the per-rank accounting summary and an XMPI-style state timeline, and
// optionally writes the trace as JSON for later analysis.
//
// Usage:
//
//	tracerun [-cluster grove|centurion] -app lu.B.8 [-mapping 0-7]
//	         [-o trace.json] [-width 100] [-load node=avail,...]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

func main() {
	clusterName := flag.String("cluster", "grove", "testbed: grove or centurion")
	app := flag.String("app", "lu.B.8", "workload name (see workloads.Lookup)")
	mappingFlag := flag.String("mapping", "", "node list, e.g. 0-7 (default: first N nodes)")
	out := flag.String("o", "", "write the trace as JSON to this file")
	width := flag.Int("width", 100, "timeline width in columns")
	loadFlag := flag.String("load", "", "static background load, e.g. 3=0.5,7=0.8")
	flag.Parse()

	var topo *cluster.Topology
	switch *clusterName {
	case "grove":
		topo = cluster.NewOrangeGrove()
	case "centurion":
		topo = cluster.NewCenturion()
	default:
		log.Fatalf("unknown cluster %q", *clusterName)
	}

	prog, err := workloads.Lookup(*app)
	if err != nil {
		log.Fatal(err)
	}

	mapping := make([]int, prog.Ranks)
	for i := range mapping {
		mapping[i] = i
	}
	if *mappingFlag != "" {
		ids, err := parseIDs(*mappingFlag)
		if err != nil {
			log.Fatal(err)
		}
		if len(ids) != prog.Ranks {
			log.Fatalf("mapping has %d nodes, %s needs %d", len(ids), prog.Name, prog.Ranks)
		}
		mapping = ids
	}

	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	if *loadFlag != "" {
		for _, part := range strings.Split(*loadFlag, ",") {
			ns, as, ok := strings.Cut(part, "=")
			if !ok {
				log.Fatalf("bad -load entry %q", part)
			}
			node, err1 := strconv.Atoi(strings.TrimSpace(ns))
			avail, err2 := strconv.ParseFloat(strings.TrimSpace(as), 64)
			if err1 != nil || err2 != nil {
				log.Fatalf("bad -load entry %q", part)
			}
			eng.Schedule(0, func() { vc.SetAvailability(node, avail) })
		}
	}

	opts := prog.Options()
	opts.RecordIntervals = true
	res := mpisim.Run(vc, net, mapping, prog.Body, opts)

	fmt.Print(res.Trace.Summary())
	fmt.Println()
	fmt.Print(res.Trace.RenderTimeline(*width))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Trace.Encode(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace written to %s\n", *out)
	}
}

// parseIDs parses "0,3,5-9" into node IDs.
func parseIDs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || b < a {
				return nil, fmt.Errorf("bad range %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad id %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
