// Command servicebench measures the CBES RPC service under concurrent
// load, comparing the sharded read path (epoch-keyed prediction cache,
// lock-free reads, Schedule coalescing) against the legacy single-lock
// path on the same workload: a read-mostly client mix (95% Evaluate /
// Compare, 5% Advance) driven by N concurrent connections against an
// in-process daemon.
//
// Usage:
//
//	servicebench [-clients 16] [-duration 5s] [-compare-width 8]
//	             [-min-speedup 0] [-min-hit-rate 0] [-o BENCH_cbes.json]
//
// Both phases run in one process on a calibrated test topology with one
// profiled synthetic application. Results — throughput, p50/p99 latency,
// cache hit rate, coalesced Schedule count, and the sharded/single-lock
// speedup — print as a table and merge into the benchjson snapshot (-o),
// where `benchjson -diff` regression-gates the rps and p99_ms entries.
// With -min-speedup > 0 the process exits non-zero if the sharded path
// fails to beat the baseline by that factor.
//
// Open-loop overload mode (DESIGN.md §15):
//
//	servicebench [-addr host:port] [-openloop-rps R | -openloop-mult M]
//	             [-openloop-dur 5s] [-deadline 250ms] [-min-goodput 0]
//
// Instead of the closed-loop phases, fire requests on a fixed arrival
// schedule — arrivals do not wait for completions, so offered load stays
// constant no matter how slow the server gets. Every request carries an
// absolute deadline; goodput counts only replies that return success
// within it (brownout replies count: a labeled cheaper answer beats an
// error). -addr targets an external daemon (apps discovered via Status);
// without it a daemon is booted in-process. -openloop-mult first probes
// the 1x closed-loop capacity and offers that multiple of it. With
// -min-goodput > 0 the process exits non-zero below that goodput floor.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"cbes"
	"cbes/internal/admission"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/obs"
	"cbes/internal/service"
	"cbes/internal/workloads"
)

// benchResult mirrors cmd/benchjson's Result so servicebench entries
// merge into the same snapshot file without importing across commands.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	EvalsPerSec float64            `json:"evals_per_sec,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// phaseStats aggregates one load phase.
type phaseStats struct {
	ops      int64
	rps      float64
	meanNs   float64
	p50ms    float64
	p99ms    float64
	errors   int64
	advances int64
}

func main() {
	clients := flag.Int("clients", 16, "concurrent client connections")
	duration := flag.Duration("duration", 5*time.Second, "wall time per phase")
	compareWidth := flag.Int("compare-width", 8, "mappings per Compare request")
	minSpeedup := flag.Float64("min-speedup", 0, "fail unless sharded rps >= single-lock rps times this (0 disables)")
	minHitRate := flag.Float64("min-hit-rate", 0, "fail unless the sharded-phase cache hit rate reaches this percentage (0 disables)")
	out := flag.String("o", "BENCH_cbes.json", "benchjson snapshot to merge results into; empty disables")
	addr := flag.String("addr", "", "open-loop mode: target an external daemon instead of booting one in-process")
	openRPS := flag.Float64("openloop-rps", 0, "open-loop mode: offered load in requests/sec (0 = derive from -openloop-mult)")
	openMult := flag.Float64("openloop-mult", 0, "open-loop mode: offer this multiple of the probed 1x closed-loop capacity")
	openDur := flag.Duration("openloop-dur", 5*time.Second, "open-loop mode: wall time to sustain the offered load")
	reqDeadline := flag.Duration("deadline", 250*time.Millisecond, "open-loop mode: per-request deadline; goodput counts completions within it")
	minGoodput := flag.Float64("min-goodput", 0, "open-loop mode: fail unless goodput reaches this many requests/sec (0 disables)")
	unprotected := flag.Bool("unprotected", false, "open-loop mode: boot the in-process daemon with admission control disabled (the control arm)")
	flag.Parse()

	if *addr != "" || *openRPS > 0 || *openMult > 0 {
		runOpenLoop(*addr, *openRPS, *openMult, *openDur, *reqDeadline, *minGoodput, *unprotected)
		return
	}

	single := runPhase(true, *clients, *duration, *compareWidth)
	hits0, misses0, coalesced0 := cacheCounters()
	sharded := runPhase(false, *clients, *duration, *compareWidth)
	hits1, misses1, coalesced1 := cacheCounters()

	hits, misses := float64(hits1-hits0), float64(misses1-misses0)
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = hits / (hits + misses) * 100
	}
	speedup := 0.0
	if single.rps > 0 {
		speedup = sharded.rps / single.rps
	}

	fmt.Printf("%-14s %10s %12s %10s %10s %8s\n", "path", "ops", "rps", "p50 ms", "p99 ms", "errors")
	fmt.Printf("%-14s %10d %12.0f %10.3f %10.3f %8d\n",
		"single-lock", single.ops, single.rps, single.p50ms, single.p99ms, single.errors)
	fmt.Printf("%-14s %10d %12.0f %10.3f %10.3f %8d\n",
		"sharded", sharded.ops, sharded.rps, sharded.p50ms, sharded.p99ms, sharded.errors)
	fmt.Printf("speedup %.1fx, cache hit rate %.1f%%, %d schedule requests coalesced\n",
		speedup, hitRate, coalesced1-coalesced0)

	if *out != "" {
		results := []*benchResult{
			{
				Name:       "ServiceRPC/single-lock",
				Iterations: single.ops,
				NsPerOp:    single.meanNs,
				Extra:      map[string]float64{"rps": single.rps, "p50_ms": single.p50ms, "p99_ms": single.p99ms},
			},
			{
				Name:       "ServiceRPC/sharded",
				Iterations: sharded.ops,
				NsPerOp:    sharded.meanNs,
				Extra: map[string]float64{
					"rps": sharded.rps, "p50_ms": sharded.p50ms, "p99_ms": sharded.p99ms,
					"hit_rate_pct": hitRate, "speedup_x": speedup,
					"cache_hits": hits, "cache_misses": misses,
				},
			},
		}
		if err := mergeSnapshot(*out, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged 2 entries into %s\n", *out)
	}

	if *minSpeedup > 0 && speedup < *minSpeedup {
		log.Fatalf("servicebench: sharded path %.1fx over single-lock, need >= %.1fx", speedup, *minSpeedup)
	}
	if *minHitRate > 0 && hitRate < *minHitRate {
		log.Fatalf("servicebench: cache hit rate %.1f%% (%.0f hits / %.0f misses), need >= %.1f%%",
			hitRate, hits, misses, *minHitRate)
	}
}

// runPhase boots a fresh system + daemon in the requested mode, drives
// the mixed workload, and tears everything down.
func runPhase(singleLock bool, clients int, duration time.Duration, compareWidth int) phaseStats {
	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	defer sys.Close()
	sys.Calibrate(bench.Options{Reps: 3})
	// A deliberately heavy multi-phase profile: phase markers keep every
	// iteration a distinct profile segment (instead of aggregating into
	// one), so a single prediction walks phases × ranks proc estimates —
	// the multi-phase-application regime the paper's estimating service
	// targets, and the one where the prediction cache matters.
	prog := workloads.Phased(60, 8)
	sys.MustProfile(prog, []int{0, 1, 2, 3, 4, 5, 6, 7})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		service.ServeWith(sys, l, service.ServeOptions{ //nolint:errcheck // clean close
			MaxClients: clients + 1,
			SingleLock: singleLock,
		})
	}()

	// Distinct 8-rank mappings over the 8-node test topology, shared by
	// every client so the cache sees genuine cross-client reuse.
	rng := rand.New(rand.NewSource(7))
	mappings := make([][]int, 16)
	for i := range mappings {
		mappings[i] = rng.Perm(8)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		all     []float64 // per-op latency, seconds
		ops     int64
		errs    int64
		advs    int64
		deadl   = time.Now().Add(duration)
		elapsed time.Duration
	)
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := service.Dial(l.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			lat := make([]float64, 0, 4096)
			var myOps, myErrs, myAdvs int64
			for i := ci; time.Now().Before(deadl); i++ {
				t0 := time.Now()
				var err error
				switch {
				case i%20 == 19: // the 5% writer slice
					// Small steps: most advances stay inside one 1s sampling
					// interval, so the snapshot epoch (and the cache) survives.
					_, err = c.Advance(0.05)
					myAdvs++
				case i%2 == 0:
					_, err = c.Evaluate(prog.Name, mappings[i%len(mappings)])
				default:
					batch := make([][]int, compareWidth)
					for j := range batch {
						batch[j] = mappings[(i+j)%len(mappings)]
					}
					_, err = c.Compare(prog.Name, batch)
				}
				lat = append(lat, time.Since(t0).Seconds())
				myOps++
				if err != nil {
					myErrs++
				}
			}
			mu.Lock()
			all = append(all, lat...)
			ops += myOps
			errs += myErrs
			advs += myAdvs
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed = time.Since(start)
	l.Close()
	<-served

	sort.Float64s(all)
	st := phaseStats{ops: ops, errors: errs, advances: advs}
	if elapsed > 0 {
		st.rps = float64(ops) / elapsed.Seconds()
	}
	if len(all) > 0 {
		var sum float64
		for _, v := range all {
			sum += v
		}
		st.meanNs = sum / float64(len(all)) * 1e9
		st.p50ms = percentile(all, 0.50) * 1e3
		st.p99ms = percentile(all, 0.99) * 1e3
	}
	return st
}

// openConns is the connection pool size for the open-loop driver. rpc
// clients multiplex concurrent calls over one connection, so the pool
// only needs to be wide enough to spread encoding contention.
const openConns = 32

// openStats aggregates one open-loop run.
type openStats struct {
	mu        sync.Mutex
	sent      int64
	ok        int64
	good      int64 // ok AND within the deadline
	brownout  int64
	shed      int64
	deadlined int64
	breaker   int64
	budget    int64
	otherErr  int64
	lat       []float64 // successful-request latency, seconds
}

func (st *openStats) record(err error, lat time.Duration, deadline time.Duration, brownout bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sent++
	if err == nil {
		st.ok++
		st.lat = append(st.lat, lat.Seconds())
		if lat <= deadline {
			st.good++
		}
		if brownout {
			st.brownout++
		}
		return
	}
	switch {
	case errors.Is(err, admission.ErrCircuitOpen):
		st.breaker++
	case service.IsShed(err):
		st.shed++
	case service.IsDeadlineExceeded(err):
		st.deadlined++
	case service.IsBusy(err):
		st.budget++
	default:
		st.otherErr++
	}
}

// runOpenLoop drives the fixed-arrival-schedule overload experiment and
// exits the process on a -min-goodput violation.
func runOpenLoop(addr string, rps, mult float64, dur, deadline time.Duration, minGoodput float64, unprotected bool) {
	target, app, ranks, nodes, cleanup := openTarget(addr, deadline, unprotected)
	defer cleanup()

	// A pool much larger than the 4096-entry prediction cache, so the
	// steady state is real prediction work, not cache hits — overload
	// has to be generated against the expensive path to mean anything.
	mappings := openMappings(ranks, nodes)

	if rps <= 0 {
		if mult <= 0 {
			mult = 5
		}
		r0 := probeCapacity(target, app, mappings)
		rps = r0 * mult
		fmt.Printf("probed 1x capacity %.0f rps; offering %.0fx = %.0f rps\n", r0, mult, rps)
	}
	if rps < 1 {
		rps = 1
	}
	// The single-goroutine arrival scheduler tops out well before this;
	// beyond it the "fixed schedule" would silently degrade to a burst.
	const maxOffered = 20000
	if rps > maxOffered {
		fmt.Printf("clamping offered load %.0f -> %d rps (scheduler resolution)\n", rps, maxOffered)
		rps = maxOffered
	}

	// Deadline-stamping clients with retries disabled: the experiment
	// measures the *server's* overload protection against a constant
	// offered load, so client-side throttling (retries, breakers) would
	// confound the arrival schedule. cbesctl and production callers get
	// the retry budget and breaker; the load generator must not.
	conns := make([]*service.Client, openConns)
	for i := range conns {
		c, err := service.Dial(target)
		if err != nil {
			log.Fatal(err)
		}
		c.SetCallTimeout(deadline)
		c.SetRetryPolicy(service.RetryPolicy{Max: -1})
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	var (
		st openStats
		wg sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / rps)
	n := int(rps * dur.Seconds())
	start := time.Now()
	for i := 0; i < n; i++ {
		// Fixed schedule: arrival i fires at start + i*interval whether or
		// not earlier requests have completed (open loop, not closed loop).
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := conns[i%len(conns)]
			t0 := time.Now()
			brownout, err := openOp(c, app, i, mappings)
			st.record(err, time.Since(t0), deadline, brownout)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(st.lat)
	goodput := float64(st.good) / elapsed.Seconds()
	fmt.Printf("open-loop: offered %.0f rps for %s, deadline %s\n", rps, elapsed.Round(time.Millisecond), deadline)
	fmt.Printf("  sent %d  ok %d  goodput %.0f rps (%.1f%% of offered)  brownout %d\n",
		st.sent, st.ok, goodput, goodput/rps*100, st.brownout)
	fmt.Printf("  errors: shed %d, deadline %d, breaker-open %d, retry-budget %d, other %d\n",
		st.shed, st.deadlined, st.breaker, st.budget, st.otherErr)
	if len(st.lat) > 0 {
		fmt.Printf("  success latency: p50 %.3f ms, p99 %.3f ms\n",
			percentile(st.lat, 0.50)*1e3, percentile(st.lat, 0.99)*1e3)
	}
	if minGoodput > 0 && goodput < minGoodput {
		log.Fatalf("servicebench: goodput %.0f rps, need >= %.0f rps", goodput, minGoodput)
	}
}

// openTarget resolves the open-loop target: an external daemon (apps
// discovered via Status, ranks recovered from the workload registry) or
// a freshly booted in-process one whose admission latency target is
// coupled to the request deadline (a limiter steering p99 toward a
// target above the deadline would admit work doomed to miss it).
func openTarget(addr string, deadline time.Duration, unprotected bool) (target, app string, ranks, nodes int, cleanup func()) {
	if addr != "" {
		c, err := service.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		stat, err := c.Status()
		if err != nil {
			log.Fatalf("status %s: %v", addr, err)
		}
		for _, name := range stat.Apps {
			if prog, err := workloads.Lookup(name); err == nil {
				return addr, name, prog.Ranks, stat.Nodes, func() {}
			}
		}
		log.Fatalf("%s: no profiled app with a known workload among %v", addr, stat.Apps)
	}

	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	sys.Calibrate(bench.Options{Reps: 3})
	// Far more phases than the closed-loop benchmark's program: each
	// cache-miss prediction walks phases × ranks proc estimates (tens of
	// milliseconds), so serving dominates RPC plumbing by orders of
	// magnitude and overload is generated against real prediction work
	// rather than codec overhead — the expensive-request regime the
	// admission limiter exists for.
	prog := workloads.Phased(12000, 8)
	sys.MustProfile(prog, []int{0, 1, 2, 3, 4, 5, 6, 7})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		service.ServeWith(sys, l, service.ServeOptions{ //nolint:errcheck // clean close
			AdmissionTarget:  deadline / 2,
			DisableAdmission: unprotected,
		})
	}()
	cleanup = func() {
		l.Close()
		<-served
		sys.Close()
	}
	return l.Addr().String(), prog.Name, 8, 8, cleanup
}

// openCompareWidth pins the open-loop Compare batch to ~2 Evaluates of
// work: wider batches cost more than the whole default deadline on the
// heavyweight open-loop app, making one op class unservable at any load
// (which would corrupt the goodput comparison, not inform it).
const openCompareWidth = 2

// openOp fires request i of the open-loop mix — 80% Evaluate, 20%
// Compare — and reports whether the reply was a brownout answer. The
// capacity probe drives the identical mix, so "1x" means one multiple
// of what this exact workload sustains.
func openOp(c *service.Client, app string, i int, mappings [][]int) (brownout bool, err error) {
	if i%5 == 4 {
		batch := make([][]int, openCompareWidth)
		for j := range batch {
			batch[j] = mappings[(i+j)%len(mappings)]
		}
		var r *service.CompareReply
		if r, err = c.Compare(app, batch); err == nil {
			brownout = r.Brownout
		}
		return brownout, err
	}
	var r *service.EvaluateReply
	if r, err = c.Evaluate(app, mappings[i%len(mappings)]); err == nil {
		brownout = r.Brownout
	}
	return brownout, err
}

// openMappings builds a pool of distinct mappings several times larger
// than the server's prediction cache, so a run cycling through it keeps
// the cache hit rate low and measures the full-prediction path.
func openMappings(ranks, nodes int) [][]int {
	rng := rand.New(rand.NewSource(11))
	mappings := make([][]int, 1<<15)
	for i := range mappings {
		mappings[i] = rng.Perm(nodes)[:ranks]
	}
	return mappings
}

// probeCapacity measures closed-loop throughput of the open-loop op mix
// — the 1x reference point the -openloop-mult overload factor scales
// from.
func probeCapacity(target, app string, mappings [][]int) float64 {
	const probeClients = 8
	probeDur := time.Second
	var (
		wg  sync.WaitGroup
		ops int64
		mu  sync.Mutex
	)
	// One synchronous warmup request first: the very first evaluation
	// against a fresh snapshot pays one-time setup that would otherwise
	// eat the probe window and understate capacity.
	if c, err := service.Dial(target); err == nil {
		c.Evaluate(app, mappings[len(mappings)-1]) //nolint:errcheck // warmup only
		c.Close()
	}
	deadl := time.Now().Add(probeDur)
	start := time.Now()
	for ci := 0; ci < probeClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := service.Dial(target)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			var my int64
			// Disjoint per-client slices of the pool keep the probe on the
			// cache-miss path, like the open-loop run it calibrates.
			base := ci * (len(mappings) / probeClients)
			for i := 0; time.Now().Before(deadl); i++ {
				if _, err := openOp(c, app, base+i, mappings); err == nil {
					my++
				}
			}
			mu.Lock()
			ops += my
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 || ops == 0 {
		log.Fatal("capacity probe completed no requests")
	}
	return float64(ops) / elapsed
}

// percentile reads the p-quantile from sorted samples (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// cacheCounters samples the cumulative cache/coalescing counters from
// the process-wide registry (registration is idempotent, so this fetches
// the same counters the service increments).
func cacheCounters() (hits, misses, coalesced uint64) {
	r := obs.Default()
	return r.Counter("cbes_predcache_hits_total", "").Value(),
		r.Counter("cbes_predcache_misses_total", "").Value(),
		r.Counter("cbes_schedule_coalesced_total", "").Value()
}

// mergeSnapshot folds results into the benchjson snapshot at path,
// replacing same-name entries and keeping the rest.
func mergeSnapshot(path string, add []*benchResult) error {
	var existing []*benchResult
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	byName := make(map[string]*benchResult, len(existing)+len(add))
	for _, r := range existing {
		byName[r.Name] = r
	}
	for _, r := range add {
		byName[r.Name] = r
	}
	merged := make([]*benchResult, 0, len(byName))
	for _, r := range byName {
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name })
	enc, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}
