// Command servicebench measures the CBES RPC service under concurrent
// load, comparing the sharded read path (epoch-keyed prediction cache,
// lock-free reads, Schedule coalescing) against the legacy single-lock
// path on the same workload: a read-mostly client mix (95% Evaluate /
// Compare, 5% Advance) driven by N concurrent connections against an
// in-process daemon.
//
// Usage:
//
//	servicebench [-clients 16] [-duration 5s] [-compare-width 8]
//	             [-min-speedup 0] [-min-hit-rate 0] [-o BENCH_cbes.json]
//
// Both phases run in one process on a calibrated test topology with one
// profiled synthetic application. Results — throughput, p50/p99 latency,
// cache hit rate, coalesced Schedule count, and the sharded/single-lock
// speedup — print as a table and merge into the benchjson snapshot (-o),
// where `benchjson -diff` regression-gates the rps and p99_ms entries.
// With -min-speedup > 0 the process exits non-zero if the sharded path
// fails to beat the baseline by that factor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/mpisim"
	"cbes/internal/obs"
	"cbes/internal/service"
	"cbes/internal/workloads"
)

// benchResult mirrors cmd/benchjson's Result so servicebench entries
// merge into the same snapshot file without importing across commands.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	EvalsPerSec float64            `json:"evals_per_sec,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// phaseStats aggregates one load phase.
type phaseStats struct {
	ops      int64
	rps      float64
	meanNs   float64
	p50ms    float64
	p99ms    float64
	errors   int64
	advances int64
}

func main() {
	clients := flag.Int("clients", 16, "concurrent client connections")
	duration := flag.Duration("duration", 5*time.Second, "wall time per phase")
	compareWidth := flag.Int("compare-width", 8, "mappings per Compare request")
	minSpeedup := flag.Float64("min-speedup", 0, "fail unless sharded rps >= single-lock rps times this (0 disables)")
	minHitRate := flag.Float64("min-hit-rate", 0, "fail unless the sharded-phase cache hit rate reaches this percentage (0 disables)")
	out := flag.String("o", "BENCH_cbes.json", "benchjson snapshot to merge results into; empty disables")
	flag.Parse()

	single := runPhase(true, *clients, *duration, *compareWidth)
	hits0, misses0, coalesced0 := cacheCounters()
	sharded := runPhase(false, *clients, *duration, *compareWidth)
	hits1, misses1, coalesced1 := cacheCounters()

	hits, misses := float64(hits1-hits0), float64(misses1-misses0)
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = hits / (hits + misses) * 100
	}
	speedup := 0.0
	if single.rps > 0 {
		speedup = sharded.rps / single.rps
	}

	fmt.Printf("%-14s %10s %12s %10s %10s %8s\n", "path", "ops", "rps", "p50 ms", "p99 ms", "errors")
	fmt.Printf("%-14s %10d %12.0f %10.3f %10.3f %8d\n",
		"single-lock", single.ops, single.rps, single.p50ms, single.p99ms, single.errors)
	fmt.Printf("%-14s %10d %12.0f %10.3f %10.3f %8d\n",
		"sharded", sharded.ops, sharded.rps, sharded.p50ms, sharded.p99ms, sharded.errors)
	fmt.Printf("speedup %.1fx, cache hit rate %.1f%%, %d schedule requests coalesced\n",
		speedup, hitRate, coalesced1-coalesced0)

	if *out != "" {
		results := []*benchResult{
			{
				Name:       "ServiceRPC/single-lock",
				Iterations: single.ops,
				NsPerOp:    single.meanNs,
				Extra:      map[string]float64{"rps": single.rps, "p50_ms": single.p50ms, "p99_ms": single.p99ms},
			},
			{
				Name:       "ServiceRPC/sharded",
				Iterations: sharded.ops,
				NsPerOp:    sharded.meanNs,
				Extra: map[string]float64{
					"rps": sharded.rps, "p50_ms": sharded.p50ms, "p99_ms": sharded.p99ms,
					"hit_rate_pct": hitRate, "speedup_x": speedup,
					"cache_hits": hits, "cache_misses": misses,
				},
			},
		}
		if err := mergeSnapshot(*out, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged 2 entries into %s\n", *out)
	}

	if *minSpeedup > 0 && speedup < *minSpeedup {
		log.Fatalf("servicebench: sharded path %.1fx over single-lock, need >= %.1fx", speedup, *minSpeedup)
	}
	if *minHitRate > 0 && hitRate < *minHitRate {
		log.Fatalf("servicebench: cache hit rate %.1f%% (%.0f hits / %.0f misses), need >= %.1f%%",
			hitRate, hits, misses, *minHitRate)
	}
}

// runPhase boots a fresh system + daemon in the requested mode, drives
// the mixed workload, and tears everything down.
func runPhase(singleLock bool, clients int, duration time.Duration, compareWidth int) phaseStats {
	sys := cbes.NewSystem(cluster.NewTestTopology(), cbes.Config{})
	defer sys.Close()
	sys.Calibrate(bench.Options{Reps: 3})
	// A deliberately heavy multi-phase profile: phase markers keep every
	// iteration a distinct profile segment (instead of aggregating into
	// one), so a single prediction walks phases × ranks proc estimates —
	// the multi-phase-application regime the paper's estimating service
	// targets, and the one where the prediction cache matters.
	prog := phasedProgram(8, 60, 0.02, 16<<10)
	sys.MustProfile(prog, []int{0, 1, 2, 3, 4, 5, 6, 7})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		service.ServeWith(sys, l, service.ServeOptions{ //nolint:errcheck // clean close
			MaxClients: clients + 1,
			SingleLock: singleLock,
		})
	}()

	// Distinct 8-rank mappings over the 8-node test topology, shared by
	// every client so the cache sees genuine cross-client reuse.
	rng := rand.New(rand.NewSource(7))
	mappings := make([][]int, 16)
	for i := range mappings {
		mappings[i] = rng.Perm(8)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		all     []float64 // per-op latency, seconds
		ops     int64
		errs    int64
		advs    int64
		deadl   = time.Now().Add(duration)
		elapsed time.Duration
	)
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := service.Dial(l.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			lat := make([]float64, 0, 4096)
			var myOps, myErrs, myAdvs int64
			for i := ci; time.Now().Before(deadl); i++ {
				t0 := time.Now()
				var err error
				switch {
				case i%20 == 19: // the 5% writer slice
					// Small steps: most advances stay inside one 1s sampling
					// interval, so the snapshot epoch (and the cache) survives.
					_, err = c.Advance(0.05)
					myAdvs++
				case i%2 == 0:
					_, err = c.Evaluate(prog.Name, mappings[i%len(mappings)])
				default:
					batch := make([][]int, compareWidth)
					for j := range batch {
						batch[j] = mappings[(i+j)%len(mappings)]
					}
					_, err = c.Compare(prog.Name, batch)
				}
				lat = append(lat, time.Since(t0).Seconds())
				myOps++
				if err != nil {
					myErrs++
				}
			}
			mu.Lock()
			all = append(all, lat...)
			ops += myOps
			errs += myErrs
			advs += myAdvs
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	elapsed = time.Since(start)
	l.Close()
	<-served

	sort.Float64s(all)
	st := phaseStats{ops: ops, errors: errs, advances: advs}
	if elapsed > 0 {
		st.rps = float64(ops) / elapsed.Seconds()
	}
	if len(all) > 0 {
		var sum float64
		for _, v := range all {
			sum += v
		}
		st.meanNs = sum / float64(len(all)) * 1e9
		st.p50ms = percentile(all, 0.50) * 1e3
		st.p99ms = percentile(all, 0.99) * 1e3
	}
	return st
}

// phasedProgram builds a ring-exchange program with one named phase per
// iteration, so its profile keeps per-iteration segments.
func phasedProgram(ranks, phases int, computePerPhase float64, msgSize int64) workloads.Program {
	return workloads.Program{
		Name:  fmt.Sprintf("svcbench.n%d.p%d", ranks, phases),
		Ranks: ranks,
		Body: func(r *mpisim.Rank) {
			n := r.Size()
			right, left := (r.ID()+1)%n, (r.ID()-1+n)%n
			for it := 0; it < phases; it++ {
				r.Phase(fmt.Sprintf("it%d", it))
				r.Compute(computePerPhase)
				r.Send(right, msgSize)
				r.Recv(left)
			}
		},
	}
}

// percentile reads the p-quantile from sorted samples (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// cacheCounters samples the cumulative cache/coalescing counters from
// the process-wide registry (registration is idempotent, so this fetches
// the same counters the service increments).
func cacheCounters() (hits, misses, coalesced uint64) {
	r := obs.Default()
	return r.Counter("cbes_predcache_hits_total", "").Value(),
		r.Counter("cbes_predcache_misses_total", "").Value(),
		r.Counter("cbes_schedule_coalesced_total", "").Value()
}

// mergeSnapshot folds results into the benchjson snapshot at path,
// replacing same-name entries and keeping the rest.
func mergeSnapshot(path string, add []*benchResult) error {
	var existing []*benchResult
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	byName := make(map[string]*benchResult, len(existing)+len(add))
	for _, r := range existing {
		byName[r.Name] = r
	}
	for _, r := range add {
		byName[r.Name] = r
	}
	merged := make([]*benchResult, 0, len(byName))
	for _, r := range byName {
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Name < merged[j].Name })
	enc, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}
