// Command experiments regenerates the paper's tables and figures on the
// virtual testbeds.
//
// Usage:
//
//	experiments [-run all|phase1|fig5|phase3|fig6|table1|table2|fig7|table3|table4|headline|ablations|faulttol|toposcale|overload]
//	            [-scale 0.25] [-seed 42] [-jobs 0] [-v]
//	            [-topo fattree:16,torus:16x16x4] [-topo-ranks 256]
//
// -scale 1.0 reproduces paper-sized case counts (slow); the default runs a
// quarter-scale version whose shapes match. Independent trials fan out
// across all cores by default; -jobs limits the worker count (-jobs 1 is
// the serial reference order, which produces identical results).
//
// toposcale is not part of the paper reproduction and only runs when named
// explicitly (never under -run all): it builds each -topo spec, reports
// construction time, route-memory mode, and interned path-class count, and
// drives a seeded halo workload to compare simulated vs wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cbes/internal/accuracy"
	"cbes/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run (comma separated), or 'all'")
	scale := flag.Float64("scale", 0.25, "case-count scale in (0,1]; 1.0 = paper-sized")
	seed := flag.Int64("seed", 42, "experiment seed")
	jobs := flag.Int("jobs", 0, "max parallel trials (0 = all cores, 1 = serial)")
	verbose := flag.Bool("v", false, "progress output")
	csvDir := flag.String("csv", "", "also export results as CSV into this directory")
	topoSpecs := flag.String("topo", "fattree:16,torus:16x16x4,dragonfly:4x8x4,fattree:28",
		"comma-separated topology specs for -run toposcale")
	topoRanks := flag.Int("topo-ranks", 256, "ranks for the toposcale workload")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Scale: *scale, Jobs: *jobs, Verbose: *verbose}
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	start := time.Now()
	lab := experiments.NewLab(cfg)

	type exp struct {
		name string
		run  func() string
	}
	var t2 *experiments.Table2Result
	var csvs []experiments.CSVWriter
	keep := func(r experiments.CSVWriter) { csvs = append(csvs, r) }
	list := []exp{
		{"phase1", func() string {
			r := experiments.Phase1Sweep(lab, cfg)
			keep(r)
			return r.Render()
		}},
		{"fig5", func() string {
			r := experiments.Fig5(lab, cfg)
			keep(r)
			return r.Render()
		}},
		{"phase3", func() string {
			r := experiments.Phase3LoadSensitivity(lab, cfg)
			keep(r)
			return r.Render()
		}},
		{"fig6", func() string {
			r := experiments.Fig6LUZones(lab, cfg)
			keep(r)
			return r.Render()
		}},
		{"table1", func() string {
			r := experiments.Table1(lab, cfg)
			keep(r)
			return r.Render()
		}},
		{"table2", func() string {
			t2 = experiments.Table2(lab, cfg)
			keep(t2)
			return t2.Render()
		}},
		{"fig7", func() string {
			if t2 == nil {
				t2 = experiments.Table2(lab, cfg)
			}
			r := experiments.Fig7(t2)
			keep(r)
			return r.Render()
		}},
		{"table3", func() string {
			r := experiments.Table3(lab, cfg)
			keep(r)
			return r.Render()
		}},
		{"table4", func() string {
			r := experiments.Table4(lab, cfg)
			keep(r)
			return r.Render()
		}},
		{"headline", func() string {
			r := experiments.Headline(lab, cfg)
			keep(r)
			return r.Render()
		}},
		{"ablations", func() string { return experiments.Ablations(lab, cfg).Render() }},
		{"faulttol", func() string {
			r := experiments.FaultTolerance(lab, cfg)
			keep(r)
			return r.Render()
		}},
	}

	// toposcale characterizes the simulator, not the paper; it only runs
	// when named explicitly, so -run all stays a pure paper reproduction.
	if want["toposcale"] {
		list = append(list, exp{"toposcale", func() string {
			r, err := experiments.TopoScale(strings.Split(*topoSpecs, ","), *topoRanks, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "toposcale: %v\n", err)
				os.Exit(1)
			}
			keep(r)
			return r.Render()
		}})
	}

	// overload characterizes the service tier's admission control, not
	// the paper; like toposcale it only runs when named explicitly.
	if want["overload"] {
		list = append(list, exp{"overload", func() string {
			r, err := experiments.Overload(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "overload: %v\n", err)
				os.Exit(1)
			}
			keep(r)
			return r.Render()
		}})
	}

	ran := 0
	for _, e := range list {
		if !selected(e.name) {
			continue
		}
		t0 := time.Now()
		out := e.run()
		fmt.Println(out)
		fmt.Printf("  [%s took %.1fs]\n\n", e.name, time.Since(t0).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *run)
		os.Exit(2)
	}
	if *csvDir != "" && len(csvs) > 0 {
		if err := experiments.ExportAll(*csvDir, csvs...); err != nil {
			fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("CSV results exported to %s\n", *csvDir)
	}
	printAccuracySummary()
	fmt.Printf("total: %d experiment(s) in %.1fs (scale %.2f, seed %d)\n",
		ran, time.Since(start).Seconds(), *scale, *seed)
}

// printAccuracySummary reports the predicted-vs-actual ledger the experiment
// hooks fed while running (fig5, table2 — see internal/accuracy).
func printAccuracySummary() {
	led := accuracy.Default()
	st := led.Status()
	if st.Joined == 0 {
		return
	}
	cal := "OK"
	if !st.CalibrationOK {
		cal = "DRIFT"
	}
	fmt.Printf("accuracy ledger: %d predicted-vs-actual pairs  bias %+.1f%%  MAPE %.1f%%  calibration %s\n",
		st.Joined, st.BiasPct, st.MAPEPct, cal)
	for _, b := range led.Stats(accuracy.StatsQuery{}) {
		fmt.Printf("  %-28s %-12s n=%-4d bias %+6.1f%%  mape %5.1f%%  p90 %5.1f%%\n",
			b.Key.App, b.Key.Scheduler, b.Count, b.BiasPct, b.MAPEPct, b.P90Pct)
	}
	fmt.Println()
}
