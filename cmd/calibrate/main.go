// Command calibrate performs the off-line CBES calibration phase for a
// virtual testbed and stores the resulting network latency model in a CBES
// database directory.
//
// Usage:
//
//	calibrate [-cluster grove|centurion] [-db ./cbesdb] [-allpairs] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/db"
)

func main() {
	name := flag.String("cluster", "grove", "testbed: grove or centurion")
	dir := flag.String("db", "./cbesdb", "CBES database directory")
	allPairs := flag.Bool("allpairs", false, "full O(N²) calibration instead of path-class representatives")
	verbose := flag.Bool("v", false, "print the calibrated classes")
	flag.Parse()

	var topo *cluster.Topology
	switch *name {
	case "grove":
		topo = cluster.NewOrangeGrove()
	case "centurion":
		topo = cluster.NewCenturion()
	default:
		log.Fatalf("unknown cluster %q (want grove or centurion)", *name)
	}

	store, err := db.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("calibrating %s (%d nodes, %d switches)...\n",
		topo.Name, topo.NumNodes(), len(topo.Switches))
	start := time.Now()
	model := bench.Calibrate(topo, bench.Options{AllPairs: *allPairs})
	fmt.Printf("calibration done in %.1fs (host time): %d path classes\n",
		time.Since(start).Seconds(), len(model.Classes))
	fmt.Printf("small-message latency spread across pairs: %.1f%%\n", model.Spread(1024)*100)

	if *verbose {
		var sigs []string
		for sig := range model.Classes {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			c := model.Classes[sig]
			fmt.Printf("  %-60s pairs=%4d  L(64B)=%8.1fµs  L(64KB)=%8.1fµs  cS=%5.1fµs\n",
				sig, c.Pairs, c.Curve.At(64)*1e6, c.Curve.At(64<<10)*1e6, c.CSend*1e6)
		}
	}

	if err := store.SaveModel(model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model saved to %s\n", store.Dir())
}
