package cbes

import (
	"math"
	"runtime"
	"testing"
	"time"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/workloads"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	sys := NewSystem(cluster.NewTestTopology(), Config{})
	sys.Calibrate(bench.Options{Reps: 3})
	return sys
}

func smallProg() workloads.Program {
	return workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 4, Iterations: 10, ComputePerIter: 0.05,
		MsgSize: 16 << 10, MsgsPerIter: 2,
	})
}

func TestSystemLifecycle(t *testing.T) {
	sys := newSystem(t)
	defer sys.Close()
	prog := smallProg()
	if _, err := sys.Profile(prog, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.ProfileOf(prog.Name); !ok {
		t.Fatal("profile not registered")
	}
	if len(sys.Apps()) != 1 {
		t.Fatalf("apps = %v", sys.Apps())
	}

	pred, err := sys.Predict(prog.Name, core.Mapping{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(prog, core.Mapping{0, 1, 2, 3})
	actual := res.Elapsed.Seconds()
	if e := math.Abs(pred.Seconds-actual) / actual; e > 0.05 {
		t.Fatalf("prediction error %.1f%% (pred %v actual %v)", e*100, pred.Seconds, actual)
	}
}

func TestProfileRequiresCalibration(t *testing.T) {
	sys := NewSystem(cluster.NewTestTopology(), Config{})
	defer sys.Close()
	if _, err := sys.Profile(smallProg(), []int{0, 1, 2, 3}); err == nil {
		t.Fatal("profiling before calibration should fail")
	}
}

func TestProfileMappingSizeChecked(t *testing.T) {
	sys := newSystem(t)
	defer sys.Close()
	if _, err := sys.Profile(smallProg(), []int{0, 1}); err == nil {
		t.Fatal("wrong mapping size should fail")
	}
}

func TestScheduleAlgorithms(t *testing.T) {
	sys := newSystem(t)
	defer sys.Close()
	prog := smallProg()
	sys.MustProfile(prog, []int{0, 1, 2, 3})
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel)
	if len(pool) != 8 {
		t.Fatalf("pool = %v", pool)
	}
	for _, alg := range []Algorithm{AlgCS, AlgNCS, AlgRS, AlgGA} {
		d, err := sys.Schedule(prog.Name, alg, pool, 1)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if err := d.Mapping.Validate(sys.Topo); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
	if _, err := sys.Schedule(prog.Name, Algorithm("bogus"), pool, 1); err == nil {
		t.Fatal("unknown algorithm should fail")
	}
	if _, err := sys.Schedule("ghost", AlgCS, pool, 1); err == nil {
		t.Fatal("unregistered app should fail")
	}
}

func TestScheduleThenRunImproves(t *testing.T) {
	sys := newSystem(t)
	defer sys.Close()
	prog := smallProg()
	sys.MustProfile(prog, []int{0, 1, 2, 3})
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel)

	cs, err := sys.Schedule(prog.Name, AlgCS, pool, 7)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately bad mapping: slow Intel nodes.
	bad := core.Mapping{4, 5, 6, 7}
	good := sys.Run(prog, cs.Mapping)
	worse := sys.Run(prog, bad)
	if good.Elapsed >= worse.Elapsed {
		t.Fatalf("scheduled mapping %v not faster than bad mapping %v", good.Elapsed, worse.Elapsed)
	}
}

func TestAdvanceAndMonitoring(t *testing.T) {
	sys := newSystem(t)
	defer sys.Close()
	sys.Eng.Schedule(des.Second, func() { sys.VC.SetAvailability(2, 0.5) })
	sys.Advance(10 * des.Second)
	snap := sys.Snapshot()
	if math.Abs(snap.AvailCPU[2]-0.5) > 0.05 {
		t.Fatalf("monitor did not track load: %v", snap.AvailCPU[2])
	}
	if sys.Eng.Now() != 10*des.Second {
		t.Fatalf("Advance did not move time: %v", sys.Eng.Now())
	}
}

func TestUseModelRoundTrip(t *testing.T) {
	sys := newSystem(t)
	defer sys.Close()
	model := sys.Model
	sys2 := NewSystem(cluster.NewTestTopology(), Config{})
	defer sys2.Close()
	if err := sys2.UseModel(model); err != nil {
		t.Fatal(err)
	}
	sys3 := NewSystem(cluster.NewOrangeGrove(), Config{})
	defer sys3.Close()
	if err := sys3.UseModel(model); err == nil {
		t.Fatal("model should not attach to a different cluster")
	}
}

func TestProfileDoesNotLeakGoroutines(t *testing.T) {
	// Regression: Profile used to spin up a throwaway DES engine and never
	// shut it down. Any simulated process still alive when the profiling run
	// completes — here a dynamically spawned child world the parent ranks do
	// not await — stayed parked forever, leaking its goroutine on every
	// profiling call.
	sys := newSystem(t)
	defer sys.Close()
	prog := workloads.Program{
		Name:  "straggler",
		Ranks: 4,
		Body: func(r *mpisim.Rank) {
			if r.ID() == 0 {
				// Unawaited long-running child: outlives the parent world.
				r.SpawnWorld([]int{1}, func(c *mpisim.Rank) {
					c.Compute(1000)
				}, mpisim.Options{AppName: "straggler.child"})
			}
			r.Compute(0.05)
		},
	}
	settled := func() int {
		n := runtime.NumGoroutine()
		for i := 0; i < 50; i++ {
			time.Sleep(2 * time.Millisecond)
			runtime.Gosched()
			if m := runtime.NumGoroutine(); m <= n {
				n = m
			}
		}
		return n
	}
	sys.MustProfile(prog, []int{0, 1, 2, 3}) // warm any lazy infrastructure
	before := settled()
	const rounds = 5
	for i := 0; i < rounds; i++ {
		sys.MustProfile(prog, []int{0, 1, 2, 3})
	}
	after := settled()
	// Each leaked profiling engine pins at least the child-world goroutine;
	// allow a little scheduler noise below that.
	if after >= before+rounds {
		t.Fatalf("goroutines grew %d -> %d across %d profiling runs", before, after, rounds)
	}
}
