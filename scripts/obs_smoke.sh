#!/bin/sh
# obs_smoke.sh — end-to-end observability smoke test.
#
# Boots cbesd with the debug HTTP endpoint on a loopback port, drives a
# real scheduling request through cbesctl, then asserts that /healthz is
# healthy and /metrics exposes the core series with non-zero values:
# per-method RPC latency histograms, scorer energy-evaluation counters,
# SA acceptance-rate gauges, and the monitor snapshot-age gauge. Also
# exercises the causal-tracing surface end to end: the schedule reply
# must print a trace ID whose /debug/trace export contains the RPC →
# schedule → anneal-restart span tree, and the decision flight recorder
# (cbesctl decisions + /debug/decisions) must hold the matching record.
#
# Also closes the predicted-vs-actual loop: the schedule reply's
# prediction ID is joined with a synthetic measured runtime via `cbesctl
# report`, `cbesctl accuracy` and /debug/accuracy (JSON + CSV) must show
# the joined pair, and a run of deliberately biased outcomes must flip
# the drift alarm (cbes_calibration_ok 0, /readyz warning, DRIFT verdict).
#
# Uses only the small `test` topology so the whole run takes seconds.
set -eu

PORT=${CBES_SMOKE_PORT:-7411}
DEBUG_PORT=${CBES_SMOKE_DEBUG_PORT:-7412}
WORK=$(mktemp -d)
BIN="$WORK/bin"
DB="$WORK/db"
LOG="$WORK/cbesd.log"
METRICS="$WORK/metrics.txt"

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "${DAEMON_PID:-}" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "obs-smoke: FAIL: $*" >&2
    echo "--- cbesd log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# fetch URL OUTFILE — curl if present, else a tiny Go HTTP client.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -o "$2" "$1"
    else
        "$BIN/httpget" "$1" > "$2"
    fi
}

echo "obs-smoke: building binaries..."
mkdir -p "$BIN"
go build -o "$BIN/cbesd" ./cmd/cbesd
go build -o "$BIN/cbesctl" ./cmd/cbesctl
if ! command -v curl >/dev/null 2>&1; then
    cat > "$WORK/httpget.go" <<'EOF'
package main

import (
	"io"
	"net/http"
	"os"
)

func main() {
	resp, err := http.Get(os.Args[1])
	if err != nil {
		os.Stderr.WriteString(err.Error() + "\n")
		os.Exit(1)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
	if resp.StatusCode != 200 {
		os.Exit(1)
	}
}
EOF
    go build -o "$BIN/httpget" "$WORK/httpget.go"
fi

echo "obs-smoke: booting cbesd (test topology) on :$PORT, debug on :$DEBUG_PORT..."
"$BIN/cbesd" -cluster test -db "$DB" -apps lu.A.8 \
    -listen "127.0.0.1:$PORT" -debug-listen "127.0.0.1:$DEBUG_PORT" \
    > "$LOG" 2>&1 &
DAEMON_PID=$!

# Wait for /healthz (boot includes calibration + profiling).
i=0
until fetch "http://127.0.0.1:$DEBUG_PORT/healthz" "$WORK/healthz.txt" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 120 ] && fail "daemon did not become healthy within 60s"
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited during boot"
    sleep 0.5
done
grep -q ok "$WORK/healthz.txt" || fail "/healthz did not report ok"
echo "obs-smoke: daemon healthy"

# Advance simulated time past one sampling interval so the snapshot-age
# gauge has something non-trivial to report, then run a real scheduling
# request so scorer/SA/RPC series accumulate.
"$BIN/cbesctl" -addr "127.0.0.1:$PORT" advance -seconds 1.5 >> "$LOG" 2>&1 \
    || fail "advance request failed"
"$BIN/cbesctl" -addr "127.0.0.1:$PORT" schedule -app lu.A.8 -alg cs -pool 0-7 \
    > "$WORK/schedule.txt" 2>&1 || { cat "$WORK/schedule.txt" >> "$LOG"; fail "schedule request failed"; }
cat "$WORK/schedule.txt" >> "$LOG"
echo "obs-smoke: scheduling request served"

# --- causal tracing: the reply's trace ID must resolve to a full tree ---
TRACE_ID=$(awk '$1 == "trace" { print $3 }' "$WORK/schedule.txt")
[ -n "$TRACE_ID" ] || fail "cbesctl schedule did not print a trace ID"
echo "obs-smoke: schedule trace id $TRACE_ID"

fetch "http://127.0.0.1:$DEBUG_PORT/debug/trace?id=$TRACE_ID" "$WORK/trace.json" \
    || fail "/debug/trace?id=$TRACE_ID fetch failed"
for span in rpc.Schedule schedule.decision anneal.run cache.lookup; do
    grep -q "\"$span\"" "$WORK/trace.json" || fail "trace export missing $span span"
done
grep -q '"traceEvents"' "$WORK/trace.json" || fail "trace export is not Chrome trace-event JSON"
echo "obs-smoke: ok: /debug/trace span tree (rpc -> schedule -> anneal -> cache)"

# The span-ring filters must narrow to the same trace.
fetch "http://127.0.0.1:$DEBUG_PORT/debug/spans?name=schedule.decision&n=5" "$WORK/spans.json" \
    || fail "/debug/spans filter fetch failed"
grep -q '"schedule.decision"' "$WORK/spans.json" || fail "/debug/spans?name= filter returned no schedule.decision span"
echo "obs-smoke: ok: /debug/spans filters"

# --- decision flight recorder: RPC, CLI, and HTTP all see the record ---
"$BIN/cbesctl" -addr "127.0.0.1:$PORT" decisions -trace "$TRACE_ID" > "$WORK/decisions.txt" 2>&1 \
    || { cat "$WORK/decisions.txt" >> "$LOG"; fail "cbesctl decisions failed"; }
grep -q "trace=$TRACE_ID" "$WORK/decisions.txt" || fail "cbesctl decisions has no record for trace $TRACE_ID"
grep -q "alg=cs" "$WORK/decisions.txt" || fail "decision record missing algorithm"
grep -q "epoch=" "$WORK/decisions.txt" || fail "decision record missing epoch"
grep -q "mapping=" "$WORK/decisions.txt" || fail "decision record missing chosen mapping"
echo "obs-smoke: ok: cbesctl decisions record"

fetch "http://127.0.0.1:$DEBUG_PORT/debug/decisions?trace=$TRACE_ID" "$WORK/decisions.json" \
    || fail "/debug/decisions fetch failed"
grep -q "\"$TRACE_ID\"" "$WORK/decisions.json" || fail "/debug/decisions has no record for trace $TRACE_ID"
echo "obs-smoke: ok: /debug/decisions record"

# --- accuracy ledger: schedule -> report outcome -> stats round trip ---
PRED_ID=$(awk '$1 == "predid" { print $3 }' "$WORK/schedule.txt")
[ -n "$PRED_ID" ] || fail "cbesctl schedule did not print a prediction ID"
PREDICTED=$(awk '$1 == "predicted" { sub(/s$/, "", $3); print $3 }' "$WORK/schedule.txt")
[ -n "$PREDICTED" ] || fail "cbesctl schedule did not print a predicted time"
ACTUAL=$(awk -v p="$PREDICTED" 'BEGIN { printf "%.6f", p * 1.1 }')
"$BIN/cbesctl" -addr "127.0.0.1:$PORT" report -id "$PRED_ID" -actual "$ACTUAL" \
    > "$WORK/report.txt" 2>&1 || { cat "$WORK/report.txt" >> "$LOG"; fail "cbesctl report failed"; }
grep -q "joined $PRED_ID" "$WORK/report.txt" || fail "report did not join prediction $PRED_ID"
echo "obs-smoke: ok: outcome joined ($PRED_ID predicted ${PREDICTED}s actual ${ACTUAL}s)"

"$BIN/cbesctl" -addr "127.0.0.1:$PORT" accuracy > "$WORK/accuracy.txt" 2>&1 \
    || { cat "$WORK/accuracy.txt" >> "$LOG"; fail "cbesctl accuracy failed"; }
JOINED=$(awk '$1 == "joined" { print $3 }' "$WORK/accuracy.txt")
[ "${JOINED:-0}" -ge 1 ] || { cat "$WORK/accuracy.txt" >> "$LOG"; fail "accuracy ledger joined count is ${JOINED:-0}, want >= 1"; }
grep -q "calibration : OK" "$WORK/accuracy.txt" || fail "accuracy not calibrated after one accurate outcome"
echo "obs-smoke: ok: cbesctl accuracy ($JOINED joined)"

fetch "http://127.0.0.1:$DEBUG_PORT/debug/accuracy" "$WORK/accuracy.json" \
    || fail "/debug/accuracy fetch failed"
grep -q "\"$PRED_ID\"" "$WORK/accuracy.json" || fail "/debug/accuracy has no sample for $PRED_ID"
fetch "http://127.0.0.1:$DEBUG_PORT/debug/accuracy?format=csv" "$WORK/accuracy.csv" \
    || fail "/debug/accuracy?format=csv fetch failed"
head -1 "$WORK/accuracy.csv" | grep -q "prediction_id,app" || fail "accuracy CSV header malformed"
grep -q "^$PRED_ID," "$WORK/accuracy.csv" || fail "accuracy CSV has no row for $PRED_ID"
echo "obs-smoke: ok: /debug/accuracy json + csv"

# The filtered metrics view must show the ledger counters (and only them).
"$BIN/cbesctl" -addr "127.0.0.1:$PORT" metrics -prefix cbes_accuracy > "$WORK/accmetrics.txt" 2>&1 \
    || fail "cbesctl metrics -prefix failed"
grep -q "cbes_accuracy_joined_total" "$WORK/accmetrics.txt" || fail "filtered metrics missing cbes_accuracy_joined_total"
if grep -q "cbes_rpc_requests_total" "$WORK/accmetrics.txt"; then
    fail "metrics -prefix cbes_accuracy leaked other families"
fi
echo "obs-smoke: ok: cbesctl metrics -prefix"

# --- drift alarm: a run of badly-biased outcomes must flip calibration ---
i=0
while [ "$i" -lt 20 ]; do
    "$BIN/cbesctl" -addr "127.0.0.1:$PORT" evaluate -app lu.A.8 -mapping 0-7 \
        > "$WORK/eval.txt" 2>&1 || { cat "$WORK/eval.txt" >> "$LOG"; fail "evaluate for drift loop failed"; }
    EP=$(awk '$1 == "predicted" { sub(/s$/, "", $4); print $4 }' "$WORK/eval.txt")
    EID=$(awk '$1 == "predid" { print $3 }' "$WORK/eval.txt")
    [ -n "$EID" ] && [ -n "$EP" ] || { cat "$WORK/eval.txt" >> "$LOG"; fail "evaluate output missing predid/predicted"; }
    EA=$(awk -v p="$EP" 'BEGIN { printf "%.6f", p * 1.8 }')
    "$BIN/cbesctl" -addr "127.0.0.1:$PORT" report -id "$EID" -actual "$EA" >> "$LOG" 2>&1 \
        || fail "drift-loop report failed"
    i=$((i + 1))
done
"$BIN/cbesctl" -addr "127.0.0.1:$PORT" accuracy > "$WORK/accuracy2.txt" 2>&1 \
    || fail "cbesctl accuracy (post-drift) failed"
grep -q "calibration : DRIFT" "$WORK/accuracy2.txt" \
    || { cat "$WORK/accuracy2.txt" >> "$LOG"; fail "drift alarm did not flip after 20 biased outcomes"; }
echo "obs-smoke: ok: drift alarm flipped (calibration DRIFT)"

fetch "http://127.0.0.1:$DEBUG_PORT/readyz" "$WORK/readyz.txt" || fail "/readyz fetch failed while drifted"
grep -q "warning" "$WORK/readyz.txt" || fail "/readyz carries no drift warning"
echo "obs-smoke: ok: /readyz drift warning"

fetch "http://127.0.0.1:$DEBUG_PORT/metrics" "$METRICS" || fail "/metrics scrape failed"
grep -q '^cbes_calibration_ok 0' "$METRICS" || fail "cbes_calibration_ok gauge is not 0 while drifted"

# require_nonzero SERIES_REGEX LABEL — assert a sample matching the regex
# exists with a value other than 0.
require_nonzero() {
    awk -v pat="$1" '
        $0 ~ "^" pat { found = 1; if ($NF + 0 != 0) nz = 1 }
        END { exit !(found && nz) }
    ' "$METRICS" || fail "series $2 missing or zero in /metrics"
    echo "obs-smoke: ok: $2"
}

require_nonzero 'cbes_rpc_requests_total\{method="Schedule"\}' "RPC request counter"
require_nonzero 'cbes_rpc_seconds_bucket\{le="\+Inf",method="Schedule"\}|cbes_rpc_seconds_bucket\{method="Schedule",le="\+Inf"\}' "RPC latency histogram"
require_nonzero 'cbes_core_energy_evals_total' "scorer full-energy counter"
require_nonzero 'cbes_core_delta_evals_total' "scorer delta-evaluation counter"
require_nonzero 'cbes_sa_acceptance_rate' "SA acceptance-rate gauge"
require_nonzero 'cbes_monitor_snapshot_age_seconds' "monitor snapshot-age gauge"
require_nonzero 'cbes_schedule_requests_total\{alg="cs"\}' "scheduler request counter"
require_nonzero 'cbes_trace_ring_spans' "tracer ring-occupancy gauge"
require_nonzero 'cbes_decisions_recorded_total' "flight-recorder decision counter"
require_nonzero 'cbes_decision_records' "flight-recorder occupancy gauge"
require_nonzero 'cbes_accuracy_predictions_total' "accuracy prediction counter"
require_nonzero 'cbes_accuracy_joined_total' "accuracy joined-outcome counter"
require_nonzero 'cbes_accuracy_abs_err_ratio_bucket' "accuracy error histogram"

# The RPC surface must match over cbesctl metrics as well.
"$BIN/cbesctl" -addr "127.0.0.1:$PORT" metrics -format json > "$WORK/metrics.json" \
    || fail "cbesctl metrics failed"
grep -q cbes_rpc_requests_total "$WORK/metrics.json" || fail "cbesctl metrics missing RPC counters"
echo "obs-smoke: ok: cbesctl metrics (json)"

# Clean shutdown path: SIGTERM must terminate the daemon promptly.
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 20 ] && fail "daemon ignored SIGTERM"
    sleep 0.5
done
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "obs-smoke: ok: clean SIGTERM shutdown"
echo "obs-smoke: PASS"
