#!/bin/sh
# overload_smoke.sh — end-to-end overload-protection smoke test.
#
# Boots cbesd with adaptive admission control on the small `test`
# topology, then drives an open-loop load at several times the probed
# closed-loop capacity with 250ms per-request deadlines (servicebench's
# open-loop mode). The run must hold a goodput floor — under overload a
# protected daemon answers from the epoch cache or the profile-only
# brownout path instead of queueing requests to death — and /metrics
# must show the limiter live (cbes_admission_limit) and degradation
# engaged (cbes_brownout_served_total). Shedding itself is NOT asserted
# non-zero: a healthy protected daemon converts would-be sheds into
# brownout answers, so cbes_admission_shed_total legitimately stays 0.
#
# Uses only the small `test` topology so the whole run takes seconds.
set -eu

PORT=${CBES_OVERLOAD_PORT:-7421}
DEBUG_PORT=${CBES_OVERLOAD_DEBUG_PORT:-7422}
WORK=$(mktemp -d)
BIN="$WORK/bin"
DB="$WORK/db"
LOG="$WORK/cbesd.log"
METRICS="$WORK/metrics.txt"

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "${DAEMON_PID:-}" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "overload-smoke: FAIL: $*" >&2
    echo "--- cbesd log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# fetch URL OUTFILE — curl if present, else a tiny Go HTTP client.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -o "$2" "$1"
    else
        "$BIN/httpget" "$1" > "$2"
    fi
}

echo "overload-smoke: building binaries..."
mkdir -p "$BIN"
go build -o "$BIN/cbesd" ./cmd/cbesd
go build -o "$BIN/servicebench" ./cmd/servicebench
if ! command -v curl >/dev/null 2>&1; then
    cat > "$WORK/httpget.go" <<'EOF'
package main

import (
	"io"
	"net/http"
	"os"
)

func main() {
	resp, err := http.Get(os.Args[1])
	if err != nil {
		os.Stderr.WriteString(err.Error() + "\n")
		os.Exit(1)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
	if resp.StatusCode != 200 {
		os.Exit(1)
	}
}
EOF
    go build -o "$BIN/httpget" "$WORK/httpget.go"
fi

# phased.3000.8 records one segment per iteration, so each cache-miss
# prediction walks 3000 segments x 8 ranks — heavy enough that 8x
# offered load saturates the compute path. The stock registry apps
# record only a handful of segments; their predictions are so cheap the
# RPC transport saturates first and admission control never engages.
echo "overload-smoke: booting cbesd (test topology, adaptive admission) on :$PORT..."
"$BIN/cbesd" -cluster test -db "$DB" -apps phased.3000.8 \
    -listen "127.0.0.1:$PORT" -debug-listen "127.0.0.1:$DEBUG_PORT" \
    -max-inflight 0 -admission-target 100ms \
    > "$LOG" 2>&1 &
DAEMON_PID=$!

i=0
until fetch "http://127.0.0.1:$DEBUG_PORT/healthz" "$WORK/healthz.txt" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 120 ] && fail "daemon did not become healthy within 60s"
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited during boot"
    sleep 0.5
done
grep -q ok "$WORK/healthz.txt" || fail "/healthz did not report ok"
echo "overload-smoke: daemon healthy"

# Open-loop overload: 8x the probed capacity for 3s with 250ms deadlines.
# servicebench exits non-zero if goodput drops below the floor.
"$BIN/servicebench" -addr "127.0.0.1:$PORT" \
    -openloop-mult 8 -openloop-dur 3s -deadline 250ms -min-goodput 20 \
    > "$WORK/openloop.txt" 2>&1 \
    || { cat "$WORK/openloop.txt" >> "$LOG"; fail "open-loop run missed the goodput floor"; }
cat "$WORK/openloop.txt"
grep -q "goodput" "$WORK/openloop.txt" || fail "servicebench printed no goodput line"
echo "overload-smoke: ok: goodput floor held at 8x offered load"

fetch "http://127.0.0.1:$DEBUG_PORT/metrics" "$METRICS" || fail "/metrics scrape failed"

# require_nonzero SERIES_REGEX LABEL — assert a sample matching the regex
# exists with a value other than 0.
require_nonzero() {
    awk -v pat="$1" '
        $0 ~ "^" pat { found = 1; if ($NF + 0 != 0) nz = 1 }
        END { exit !(found && nz) }
    ' "$METRICS" || fail "series $2 missing or zero in /metrics"
    echo "overload-smoke: ok: $2"
}

require_nonzero 'cbes_admission_limit' "admission limit gauge"
require_nonzero 'cbes_brownout_served_total' "brownout served counter"
require_nonzero 'cbes_core_predict_brownout_total' "brownout sketch counter"
grep -q '^cbes_admission_shed_total' "$METRICS" \
    || fail "cbes_admission_shed_total family missing from /metrics"
echo "overload-smoke: ok: shed counter family exported"

# /readyz must still answer after the storm (shedding may have subsided,
# so no particular warning is required — just a live readiness surface).
fetch "http://127.0.0.1:$DEBUG_PORT/readyz" "$WORK/readyz.txt" || fail "/readyz fetch failed after overload"
echo "overload-smoke: ok: /readyz live after overload"

# Clean shutdown path: SIGTERM must terminate the daemon promptly.
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 20 ] && fail "daemon ignored SIGTERM"
    sleep 0.5
done
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "overload-smoke: ok: clean SIGTERM shutdown"
echo "overload-smoke: PASS"
