package cbes_test

// Scale tests and benchmarks for the structured-topology simulator path:
// 1k/5k-node fat trees built algebraically (no stored route table),
// driven end to end through vcluster + simnet + mpisim. These gate the
// "scale the simulator to 5k nodes" work — the build benchmarks live in
// internal/cluster; here the whole stack runs.

import (
	"fmt"
	"math/rand"
	"testing"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

// runHaloOnFatTree builds a k-ary fat tree, spreads `ranks` ranks across
// distinct nodes with a seeded shuffle, and runs the 2D halo workload.
func runHaloOnFatTree(k, ranks int, seed int64) *mpisim.Result {
	topo := cluster.NewFatTree(cluster.FatTreeSpec{K: k, Archs: []cluster.Arch{cluster.ArchAlpha, cluster.ArchIntel}})
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	rng := rand.New(rand.NewSource(seed))
	mapping := rng.Perm(topo.NumNodes())[:ranks]
	prog := workloads.Halo2D(workloads.Halo2DConfig{Ranks: ranks, Iterations: 3, MsgSize: 16 << 10, ComputePerIter: 0.002})
	return mpisim.Run(vc, net, mapping, prog.Body, prog.Options())
}

// BenchmarkFatTreeApplicationRun1k runs the halo workload on a 1024-node
// fat tree (k = 16). It stays in -short runs, which makes `make
// bench-quick` the 1k-node build+run smoke under -race.
func BenchmarkFatTreeApplicationRun1k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := runHaloOnFatTree(16, 256, int64(i))
		if res.Elapsed <= 0 {
			b.Fatal("no simulated time elapsed")
		}
	}
}

// BenchmarkFatTreeApplicationRun5k runs the halo workload on a 5488-node
// fat tree (k = 28) — the acceptance benchmark for the 5k scaling work.
func BenchmarkFatTreeApplicationRun5k(b *testing.B) {
	skipSlowBench(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := runHaloOnFatTree(28, 1024, int64(i))
		if res.Elapsed <= 0 {
			b.Fatal("no simulated time elapsed")
		}
	}
}

// snapshotRun serializes everything observable about one seeded run on a
// 1k-node fat tree: elapsed time, message/byte counters, per-rank node
// busy time, and the busy accounting of every fabric link.
func snapshotRun(seed int64) string {
	topo := cluster.NewFatTree(cluster.FatTreeSpec{K: 16, Archs: []cluster.Arch{cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC}})
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	rng := rand.New(rand.NewSource(seed))
	mapping := rng.Perm(topo.NumNodes())[:256]
	// Background load on a few seeded nodes makes the snapshot sensitive
	// to CPU-sharing arithmetic, not just transport.
	for i := 0; i < 16; i++ {
		node := rng.Intn(topo.NumNodes())
		avail := 0.3 + 0.6*rng.Float64()
		eng.Schedule(0, func() { vc.SetAvailability(node, avail) })
	}
	prog := workloads.Halo2D(workloads.Halo2DConfig{Ranks: 256, Iterations: 3, MsgSize: 16 << 10, ComputePerIter: 0.002})
	res := mpisim.Run(vc, net, mapping, prog.Body, prog.Options())

	out := fmt.Sprintf("elapsed=%d messages=%d bytes=%d\n", res.Elapsed, net.Messages(), net.Bytes())
	for _, node := range mapping {
		out += fmt.Sprintf("node %d busy %.17g\n", node, vc.CPU(node).BusyRefSeconds())
	}
	for id := range topo.Links {
		if busy := net.LinkBusy(id); busy != 0 {
			out += fmt.Sprintf("link %d busy %d\n", id, busy)
		}
	}
	return out
}

// TestFatTreeDeterminism1k pins byte-identical snapshots for a seeded
// 1k-node random workload across two independent runs — the determinism
// guarantee that makes 5k-scale experiments reproducible.
func TestFatTreeDeterminism1k(t *testing.T) {
	if testing.Short() {
		t.Skip("1k determinism run skipped in -short mode")
	}
	a := snapshotRun(7)
	b := snapshotRun(7)
	if a != b {
		t.Fatalf("two seeded runs diverged:\nrun1:\n%s\nrun2:\n%s", a, b)
	}
	if c := snapshotRun(8); c == a {
		t.Fatal("different seeds produced identical snapshots — seeding inert?")
	}
}
