package cbes

// The benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating a reduced-scale version of each experiment), plus
// component micro-benchmarks and ablation benches for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration of the tables/figures is done by
// cmd/experiments, not by these benchmarks.

import (
	"sync"
	"testing"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/experiments"
	"cbes/internal/monitor"
	"cbes/internal/schedule"
	"cbes/internal/workloads"
)

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

// labForBench shares one calibrated lab across all benchmarks.
func labForBench(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.Config{Seed: 42})
	})
	return benchLab
}

func benchCfg(seed int64) experiments.Config {
	return experiments.Config{Seed: seed, Scale: 0.02}
}

func BenchmarkPhase1Sweep(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Phase1Sweep(l, benchCfg(int64(i)))
	}
}

func BenchmarkFig5Predictions(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Fig5(l, benchCfg(int64(i)))
	}
}

func BenchmarkPhase3LoadSensitivity(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Phase3LoadSensitivity(l, benchCfg(int64(i)))
	}
}

func BenchmarkFig6Zones(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Fig6LUZones(l, benchCfg(int64(i)))
	}
}

func BenchmarkTable1LUBestWorst(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Table1(l, benchCfg(int64(i)))
	}
}

func BenchmarkTable2LUAverage(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Table2(l, benchCfg(int64(i)))
	}
}

func BenchmarkFig7Distributions(b *testing.B) {
	l := labForBench(b)
	t2 := experiments.Table2(l, benchCfg(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(t2)
	}
}

func BenchmarkTable3OtherBestWorst(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Table3(l, benchCfg(int64(i)))
	}
}

func BenchmarkTable4OtherAverage(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Table4(l, benchCfg(int64(i)))
	}
}

func BenchmarkHeadline(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Headline(l, benchCfg(int64(i)))
	}
}

func BenchmarkAblations(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Ablations(l, benchCfg(int64(i)))
	}
}

// --- component micro-benchmarks -------------------------------------------

// benchSystem builds a calibrated System with a profiled app once.
var (
	benchSysOnce sync.Once
	benchSys     *System
	benchProg    workloads.Program
)

func systemForBench(b *testing.B) (*System, workloads.Program) {
	b.Helper()
	benchSysOnce.Do(func() {
		benchSys = NewSystem(cluster.NewOrangeGrove(), Config{})
		benchSys.Calibrate(bench.Options{Reps: 3})
		benchProg = workloads.Aztec(8)
		benchSys.MustProfile(benchProg, benchSys.Topo.NodesByArch(cluster.ArchAlpha))
	})
	return benchSys, benchProg
}

// BenchmarkMappingEvaluation measures the throughput of the core CBES
// prediction operation — the energy function the SA scheduler drives.
func BenchmarkMappingEvaluation(b *testing.B) {
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())
	m := core.Mapping(sys.Topo.NodesByArch(cluster.ArchAlpha))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Predict(m, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// Scheduler benches: one full scheduling decision per iteration.
func benchScheduler(b *testing.B, alg Algorithm) {
	sys, prog := systemForBench(b)
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Schedule(prog.Name, alg, pool, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerCS(b *testing.B)  { benchScheduler(b, AlgCS) }
func BenchmarkSchedulerNCS(b *testing.B) { benchScheduler(b, AlgNCS) }
func BenchmarkSchedulerGA(b *testing.B)  { benchScheduler(b, AlgGA) }
func BenchmarkSchedulerRS(b *testing.B)  { benchScheduler(b, AlgRS) }

// BenchmarkSchedulerExhaustive measures full enumeration on the 8-node
// Alpha pool (8! mappings).
func BenchmarkSchedulerExhaustive(b *testing.B) {
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	pool := sys.Topo.NodesByArch(cluster.ArchAlpha)
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Exhaustive(&schedule.Request{
			Eval: eval, Snap: snap, Pool: pool, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation bench: class-representative vs all-pairs calibration cost (the
// O(N) infrastructure claim of §2).
func BenchmarkCalibrateByClass(b *testing.B) {
	topo := cluster.NewOrangeGrove()
	for i := 0; i < b.N; i++ {
		bench.Calibrate(topo, bench.Options{Reps: 3, Sizes: []int64{64, 8 << 10}, SkipLoadFit: true})
	}
}

func BenchmarkCalibrateAllPairs(b *testing.B) {
	topo := cluster.NewOrangeGrove()
	for i := 0; i < b.N; i++ {
		bench.Calibrate(topo, bench.Options{Reps: 3, Sizes: []int64{64, 8 << 10}, SkipLoadFit: true, AllPairs: true})
	}
}

// BenchmarkApplicationRun measures end-to-end simulated execution of the
// LU model on the virtual cluster (the heaviest experiment component).
func BenchmarkApplicationRun(b *testing.B) {
	sys, _ := systemForBench(b)
	prog := workloads.LU(workloads.ClassA, 8)
	mapping := core.Mapping(sys.Topo.NodesByArch(cluster.ArchAlpha))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(prog, mapping)
	}
}

// BenchmarkProfilePipeline measures trace -> profile -> λ end to end.
func BenchmarkProfilePipeline(b *testing.B) {
	sys, prog := systemForBench(b)
	mapping := sys.Topo.NodesByArch(cluster.ArchAlpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Profile(prog, mapping); err != nil {
			b.Fatal(err)
		}
	}
}
