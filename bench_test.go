package cbes_test

// The benchmark harness: one testing.B benchmark per paper table/figure
// (regenerating a reduced-scale version of each experiment), plus
// component micro-benchmarks and ablation benches for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration of the tables/figures is done by
// cmd/experiments, not by these benchmarks.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"cbes"
	"cbes/internal/anneal"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/experiments"
	"cbes/internal/monitor"
	"cbes/internal/raceflag"
	"cbes/internal/schedule"
	"cbes/internal/workloads"
)

// skipSlowBench gates the experiment-suite benchmarks (several seconds
// per op each) out of -short runs, so `make bench-quick` can smoke every
// remaining benchmark body once under -race in reasonable time.
func skipSlowBench(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("multi-second experiment benchmark skipped in -short mode")
	}
}

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

// labForBench shares one calibrated lab across all benchmarks.
func labForBench(b *testing.B) *experiments.Lab {
	b.Helper()
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.Config{Seed: 42})
	})
	return benchLab
}

func benchCfg(seed int64) experiments.Config {
	return experiments.Config{Seed: seed, Scale: 0.02}
}

func BenchmarkPhase1Sweep(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Phase1Sweep(l, benchCfg(int64(i)))
	}
}

func BenchmarkFig5Predictions(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Fig5(l, benchCfg(int64(i)))
	}
}

func BenchmarkPhase3LoadSensitivity(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Phase3LoadSensitivity(l, benchCfg(int64(i)))
	}
}

func BenchmarkFig6Zones(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Fig6LUZones(l, benchCfg(int64(i)))
	}
}

func BenchmarkTable1LUBestWorst(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Table1(l, benchCfg(int64(i)))
	}
}

func BenchmarkTable2LUAverage(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Table2(l, benchCfg(int64(i)))
	}
}

func BenchmarkFig7Distributions(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	t2 := experiments.Table2(l, benchCfg(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(t2)
	}
}

func BenchmarkTable3OtherBestWorst(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Table3(l, benchCfg(int64(i)))
	}
}

func BenchmarkTable4OtherAverage(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Table4(l, benchCfg(int64(i)))
	}
}

func BenchmarkHeadline(b *testing.B) {
	skipSlowBench(b)
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Headline(l, benchCfg(int64(i)))
	}
}

func BenchmarkAblations(b *testing.B) {
	l := labForBench(b)
	for i := 0; i < b.N; i++ {
		experiments.Ablations(l, benchCfg(int64(i)))
	}
}

// --- component micro-benchmarks -------------------------------------------

// benchSystem builds a calibrated System with a profiled app once.
var (
	benchSysOnce sync.Once
	benchSys     *cbes.System
	benchProg    workloads.Program
)

func systemForBench(b *testing.B) (*cbes.System, workloads.Program) {
	b.Helper()
	benchSysOnce.Do(func() {
		benchSys = cbes.NewSystem(cluster.NewOrangeGrove(), cbes.Config{})
		benchSys.Calibrate(bench.Options{Reps: 3})
		benchProg = workloads.Aztec(8)
		benchSys.MustProfile(benchProg, benchSys.Topo.NodesByArch(cluster.ArchAlpha))
	})
	return benchSys, benchProg
}

// BenchmarkMappingEvaluation measures the throughput of the core CBES
// prediction operation — the energy function the SA scheduler drives.
func BenchmarkMappingEvaluation(b *testing.B) {
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())
	m := core.Mapping(sys.Topo.NodesByArch(cluster.ArchAlpha))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Predict(m, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// Scheduler benches: one full scheduling decision per iteration.
func benchScheduler(b *testing.B, alg cbes.Algorithm) {
	sys, prog := systemForBench(b)
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Schedule(prog.Name, alg, pool, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerCS(b *testing.B)  { benchScheduler(b, cbes.AlgCS) }
func BenchmarkSchedulerNCS(b *testing.B) { benchScheduler(b, cbes.AlgNCS) }
func BenchmarkSchedulerGA(b *testing.B)  { benchScheduler(b, cbes.AlgGA) }
func BenchmarkSchedulerRS(b *testing.B)  { benchScheduler(b, cbes.AlgRS) }

// BenchmarkSchedulerExhaustive measures full enumeration on the 8-node
// Alpha pool (8! mappings).
func BenchmarkSchedulerExhaustive(b *testing.B) {
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	pool := sys.Topo.NodesByArch(cluster.ArchAlpha)
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Exhaustive(&schedule.Request{
			Eval: eval, Snap: snap, Pool: pool, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation bench: class-representative vs all-pairs calibration cost (the
// O(N) infrastructure claim of §2).
func BenchmarkCalibrateByClass(b *testing.B) {
	topo := cluster.NewOrangeGrove()
	for i := 0; i < b.N; i++ {
		bench.Calibrate(topo, bench.Options{Reps: 3, Sizes: []int64{64, 8 << 10}, SkipLoadFit: true})
	}
}

func BenchmarkCalibrateAllPairs(b *testing.B) {
	topo := cluster.NewOrangeGrove()
	for i := 0; i < b.N; i++ {
		bench.Calibrate(topo, bench.Options{Reps: 3, Sizes: []int64{64, 8 << 10}, SkipLoadFit: true, AllPairs: true})
	}
}

// BenchmarkApplicationRun measures end-to-end simulated execution of the
// LU model on the virtual cluster (the heaviest experiment component).
func BenchmarkApplicationRun(b *testing.B) {
	sys, _ := systemForBench(b)
	prog := workloads.LU(workloads.ClassA, 8)
	mapping := core.Mapping(sys.Topo.NodesByArch(cluster.ArchAlpha))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(prog, mapping)
	}
}

// BenchmarkProfilePipeline measures trace -> profile -> λ end to end.
func BenchmarkProfilePipeline(b *testing.B) {
	sys, prog := systemForBench(b)
	mapping := sys.Topo.NodesByArch(cluster.ArchAlpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Profile(prog, mapping); err != nil {
			b.Fatal(err)
		}
	}
}

// --- fast-path benchmarks -------------------------------------------------

// BenchmarkEnergyFastPath measures the allocation-free full evaluation
// (Scorer.Energy) on the same workload as BenchmarkMappingEvaluation.
func BenchmarkEnergyFastPath(b *testing.B) {
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())
	m := core.Mapping(sys.Topo.NodesByArch(cluster.ArchAlpha))
	sc := eval.Scorer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Energy(m, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnergyDelta measures incremental re-scoring of single moves —
// the per-proposal cost the SA scheduler actually pays.
func BenchmarkEnergyDelta(b *testing.B) {
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC)
	m := make(core.Mapping, prog.Ranks)
	copy(m, pool)
	sc := eval.Scorer()
	if _, err := sc.Energy(m, snap); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Apply(core.Move{Rank: i % prog.Ranks, To: pool[i%len(pool)]})
		sc.Undo()
	}
}

// saThroughput times full SA scheduling decisions and reports energy
// evaluations per second of wall time.
func saThroughput(b *testing.B, run func(seed int64) int) {
	b.Helper()
	evals := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		evals += run(int64(i))
	}
	secs := time.Since(start).Seconds()
	if secs > 0 {
		b.ReportMetric(float64(evals)/secs, "evals/s")
	}
}

// BenchmarkSASchedulingFast is a full CS scheduling decision on Orange
// Grove via the incremental fast path (the production configuration).
func BenchmarkSASchedulingFast(b *testing.B) {
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC)
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())
	saThroughput(b, func(seed int64) int {
		d, err := schedule.SimulatedAnnealing(&schedule.Request{
			Eval: eval, Snap: snap, Pool: pool, Seed: seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		return d.Evaluations
	})
}

// BenchmarkSASchedulingPredictBaseline is the pre-fast-path configuration
// for comparison: the same annealing schedule and effort, but every
// proposal is a mapping clone scored by a full Predict call — what
// saSchedule did before the scorer existed. The fast path must beat its
// evals/s by ≥5× (checked by TestFastPathSpeedupTarget, asserted here only
// as a reported metric).
func BenchmarkSASchedulingPredictBaseline(b *testing.B) {
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		b.Fatal(err)
	}
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC)
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())
	saThroughput(b, func(seed int64) int {
		return saPredictBaseline(b, eval, snap, pool, seed)
	})
}

// saPredictBaseline runs one Predict-scored SA restart sequence matching
// the legacy scheduler: 4 restarts, 1000 evaluations each, clone-based
// neighbor proposals. Returns total evaluations performed.
func saPredictBaseline(tb testing.TB, eval *core.Evaluator, snap *monitor.Snapshot, pool []int, seed int64) int {
	energy := func(m core.Mapping) float64 {
		p, err := eval.Predict(m, snap)
		if err != nil {
			tb.Fatal(err)
		}
		return p.Seconds
	}
	total := 0
	for r := 0; r < 4; r++ {
		rng := rand.New(rand.NewSource(seed + int64(1000*r)))
		init := make(core.Mapping, eval.Prof.Ranks)
		used := map[int]int{}
		for i := range init {
			for {
				n := pool[rng.Intn(len(pool))]
				if used[n] < 1 {
					init[i] = n
					used[n]++
					break
				}
			}
		}
		_, _, st := anneal.Minimize(anneal.Config{
			Seed:           seed + int64(1000*r) + 1,
			MaxEvaluations: 1000,
		}, init, energy, func(m core.Mapping, rng *rand.Rand) core.Mapping {
			nm := m.Clone()
			if rng.Intn(2) == 0 && len(nm) >= 2 {
				i, j := rng.Intn(len(nm)), rng.Intn(len(nm))
				nm[i], nm[j] = nm[j], nm[i]
				return nm
			}
			u := nm.Multiplicity()
			i := rng.Intn(len(nm))
			for a := 0; a < 8*len(pool); a++ {
				n := pool[rng.Intn(len(pool))]
				if n != nm[i] && u[n] < 1 {
					nm[i] = n
					break
				}
			}
			return nm
		})
		total += st.Evaluations
	}
	return total
}

// TestFastPathSpeedupTarget asserts the headline claim: SA scheduling on
// Orange Grove achieves several times the energy-evaluation throughput of
// the Predict-per-proposal baseline. The measured gap is ~5× — it was over
// an order of magnitude before the topology's path-signature cache sped up
// Predict itself — so the floor is a conservative 3×.
func TestFastPathSpeedupTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if raceflag.Enabled {
		t.Skip("race instrumentation penalizes the two paths unevenly; ratio is meaningless")
	}
	b := &testing.B{}
	sys, prog := systemForBench(b)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC)
	snap := monitor.IdleSnapshot(sys.Topo.NumNodes())

	rate := func(run func(seed int64) int) float64 {
		// Warm up once, then time a few decisions.
		run(0)
		evals := 0
		start := time.Now()
		for s := int64(1); s <= 3; s++ {
			evals += run(s)
		}
		return float64(evals) / time.Since(start).Seconds()
	}
	fast := rate(func(seed int64) int {
		d, err := schedule.SimulatedAnnealing(&schedule.Request{
			Eval: eval, Snap: snap, Pool: pool, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d.Evaluations
	})
	baseline := rate(func(seed int64) int {
		return saPredictBaseline(t, eval, snap, pool, seed)
	})
	if fast < 3*baseline {
		t.Fatalf("fast path %.0f evals/s < 3x baseline %.0f evals/s", fast, baseline)
	}
	t.Logf("fast %.0f evals/s, baseline %.0f evals/s (%.1fx)", fast, baseline, fast/baseline)
}
