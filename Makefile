GO ?= go

.PHONY: build test verify ci bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification (ROADMAP.md): everything must build and pass.
verify: build test

# CI target: vet plus the full suite under the race detector — the fast
# path shares evaluators across scheduler workers, so racy regressions
# must fail loudly.
ci:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# Short fuzz pass over the delta-evaluation invariants.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnergyDelta -fuzztime 30s ./internal/core/
