GO ?= go

.PHONY: build test verify ci bench obs-smoke fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification (ROADMAP.md): everything must build and pass.
verify: build test

# CI target: vet plus the full suite under the race detector — the fast
# path shares evaluators across scheduler workers, so racy regressions
# must fail loudly.
ci:
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

# Run the benchmark suite and archive it as machine-readable JSON
# (name -> ns/op, allocs/op, evals/s) for cross-commit comparison. The
# raw text lands in BENCH_cbes.txt; the > (not a pipe) keeps a bench
# failure failing the target.
bench:
	$(GO) test -run xxx -bench . -benchmem ./... > BENCH_cbes.txt
	$(GO) run ./cmd/benchjson -o BENCH_cbes.json < BENCH_cbes.txt

# End-to-end observability smoke test: boots cbesd with -debug-listen,
# drives a scheduling request, asserts /healthz plus non-zero core
# series in /metrics, and checks clean SIGTERM shutdown.
obs-smoke:
	sh scripts/obs_smoke.sh

# Short fuzz pass over the delta-evaluation invariants.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnergyDelta -fuzztime 30s ./internal/core/
