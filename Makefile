GO ?= go

.PHONY: build test verify ci bench bench-quick bench-compare service-bench service-bench-short obs-smoke overload-smoke faults-smoke fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification (ROADMAP.md): everything must build and pass.
verify: build test

# CI target: vet plus the full suite under the race detector — the fast
# path shares evaluators across scheduler workers and the experiment lab
# fans trials across cores, so racy regressions must fail loudly. The
# one-iteration bench pass exercises the benchmark bodies (also under
# -race) without paying for steady-state timing.
ci:
	$(GO) vet ./...
	$(MAKE) faults-smoke
	$(MAKE) obs-smoke
	$(MAKE) overload-smoke
	$(GO) test -race -timeout 45m ./...
	$(MAKE) bench-quick
	$(MAKE) service-bench-short

# Run the benchmark suite and archive it as machine-readable JSON
# (name -> ns/op, allocs/op, evals/s) for cross-commit comparison. The
# raw text lands in BENCH_cbes.txt; the > (not a pipe) keeps a bench
# failure failing the target.
bench:
	$(GO) test -run xxx -bench . -benchmem ./... > BENCH_cbes.txt
	$(GO) run ./cmd/benchjson -o BENCH_cbes.json < BENCH_cbes.txt

# Smoke-run the benchmark bodies once under the race detector. This is a
# correctness gate (pooled events + parallel trials must be race-clean on
# the bench paths too), not a timing run; -short drops the multi-second
# experiment-suite benches, which the race suite already covers.
bench-quick:
	$(GO) test -short -run xxx -bench . -benchtime 1x -race -timeout 30m ./...

# Re-run the suite and diff against the archived snapshot; fails if any
# benchmark regressed more than 20% in ns/op or allocs/op, or more than
# 20% in bytes/op (the memory gate that keeps O(N²) state out of the
# topology build and the scoring hot path).
bench-compare:
	$(GO) test -run xxx -bench . -benchmem ./... > BENCH_new.txt
	$(GO) run ./cmd/benchjson -o BENCH_new.json < BENCH_new.txt
	$(GO) run ./cmd/benchjson -diff -threshold 20 -bytes-threshold 20 BENCH_cbes.json BENCH_new.json

# Concurrent-load benchmark of the RPC service: sharded read path
# (epoch-keyed prediction cache, lock-free reads) vs the single-lock
# baseline on a 95% read mix. Records throughput, p50/p99, and cache
# hit/miss counts into BENCH_cbes.json (rps and p99_ms are
# regression-gated by bench-compare) and fails unless the sharded path
# is at least 10x the baseline with a >= 90% cache hit rate.
service-bench:
	$(GO) run ./cmd/servicebench -clients 16 -duration 5s -min-speedup 10 -min-hit-rate 90 -o BENCH_cbes.json

# Short service-bench for CI: quick smoke with a relaxed speedup floor
# (shared-runner timing is noisy), no snapshot update.
service-bench-short:
	$(GO) run ./cmd/servicebench -clients 8 -duration 1s -min-speedup 3 -o ""

# End-to-end observability smoke test: boots cbesd with -debug-listen,
# drives a scheduling request, asserts /healthz plus non-zero core
# series in /metrics, follows the printed trace ID through /debug/trace
# and the decision flight recorder, closes the predicted-vs-actual loop
# (report outcome -> cbesctl accuracy -> /debug/accuracy, drift alarm
# flip), and checks clean SIGTERM shutdown.
obs-smoke:
	sh scripts/obs_smoke.sh

# End-to-end overload-protection smoke test (DESIGN.md §15): boots cbesd
# with adaptive admission on the test topology profiling a phased (many-
# segment) app, offers 8x the probed capacity open-loop with 250ms
# deadlines, and asserts the goodput floor held, the limiter gauges are
# live, and brownout degradation engaged.
overload-smoke:
	sh scripts/overload_smoke.sh

# Fast cross-layer fault gate: the fault-injection, health, degraded-mode,
# and service-hardening tests across every affected package, in short mode
# under the race detector. Quick signal before ci's full race suite.
faults-smoke:
	$(GO) test -short -race -timeout 10m \
		-run 'Fault|Crash|Degrade|Sensor|Stall|Health|Stale|Down|Infeasible|Evacuat|NoNoise|Busy|Panic|Retr|Drain|Soak|MaxClients|Probe|Readyz|Injector|RandomSchedule' \
		./internal/faults/ ./internal/vcluster/ ./internal/simnet/ \
		./internal/monitor/ ./internal/core/ ./internal/schedule/ \
		./internal/remap/ ./internal/service/ ./internal/obs/

# Short fuzz pass over the delta-evaluation invariants.
fuzz:
	$(GO) test -run xxx -fuzz FuzzEnergyDelta -fuzztime 30s ./internal/core/
