module cbes

go 1.22
