// Federation: schedule a latency-sensitive solver (Aztec) on the
// homogeneous Intel pool that spans the Orange Grove federation link, and
// show how CS exploits the network topology while NCS — blind to
// communication — degenerates to a random pick among equal-speed nodes.
package main

import (
	"fmt"
	"log"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/workloads"
)

func main() {
	topo := cluster.NewOrangeGrove()
	sys := cbes.NewSystem(topo, cbes.Config{})
	defer sys.Close()
	sys.Calibrate(bench.Options{})

	prog := workloads.Aztec(8)
	intels := topo.NodesByArch(cluster.ArchIntel)
	sys.MustProfile(prog, intels[:8])

	fmt.Printf("Intel pool: %v — 6 nodes east of the federation link, 6 west\n", intels)
	fmt.Println("scheduling aztec.8 (400 solver iterations, halo exchanges + allreduces)")
	fmt.Println()
	fmt.Printf("%-5s %-30s %12s %12s\n", "alg", "mapping", "predicted", "actual")

	for _, alg := range []cbes.Algorithm{cbes.AlgCS, cbes.AlgNCS, cbes.AlgRS, cbes.AlgGA} {
		dec, err := sys.Schedule(prog.Name, alg, intels, 7)
		if err != nil {
			log.Fatal(err)
		}
		actual := sys.Run(prog, dec.Mapping).Elapsed.Seconds()
		fmt.Printf("%-5s %-30s %11.1fs %11.1fs\n",
			alg, fmt.Sprint([]int(dec.Mapping)), dec.Predicted, actual)
	}

	fmt.Println()
	fmt.Println("CS packs communicating ranks on one side of the D-Link federation")
	fmt.Println("path; NCS sees twelve equally fast nodes and splits the job across")
	fmt.Println("the bottleneck.")
}
