// Timeline: run the same communication-bound ring application on a packed
// and an interleaved mapping and show the XMPI-style per-rank state
// timelines side by side — making the extra blocked time (".") of the bad
// mapping directly visible, the way the paper's profiling subsystem
// visualizes execution traces.
package main

import (
	"fmt"

	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/mpisim"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

func runWithTimeline(topo *cluster.Topology, prog workloads.Program, mapping []int) *mpisim.Result {
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	opts := prog.Options()
	opts.RecordIntervals = true
	return mpisim.Run(vc, net, mapping, prog.Body, opts)
}

func main() {
	topo := cluster.NewOrangeGrove()
	// A communication-bound ring: each iteration exchanges two 48 KB
	// messages per rank with little computation between them.
	prog := workloads.Synthetic(workloads.SyntheticConfig{
		Ranks: 8, Iterations: 60, ComputePerIter: 0.015,
		MsgSize: 48 << 10, MsgsPerIter: 2,
	})
	intels := topo.NodesByArch(cluster.ArchIntel)
	east, west := intels[:6], intels[6:]

	// Packed: ring neighbors stay east of the federation link.
	good := append(append([]int{}, east...), west[:2]...)
	// Interleaved: every ring edge crosses the D-Link federation path.
	bad := []int{east[0], west[0], east[1], west[1], east[2], west[2], east[3], west[3]}

	fmt.Println("=== ring packed east of the D-Link federation path ===")
	resGood := runWithTimeline(topo, prog, good)
	fmt.Printf("elapsed %.1fs\n", resGood.Elapsed.Seconds())
	fmt.Print(resGood.Trace.RenderTimeline(96))

	fmt.Println()
	fmt.Println("=== ring interleaved across the federation path ===")
	resBad := runWithTimeline(topo, prog, bad)
	fmt.Printf("elapsed %.1fs\n", resBad.Elapsed.Seconds())
	fmt.Print(resBad.Trace.RenderTimeline(96))

	fmt.Println()
	fmt.Println("per-rank accounting of the interleaved run:")
	fmt.Print(resBad.Trace.Summary())

	d := resBad.Elapsed.Seconds() - resGood.Elapsed.Seconds()
	fmt.Printf("\ninterleaving across the limited-capacity link costs %.1fs (%.0f%%)\n",
		d, d/resBad.Elapsed.Seconds()*100)
}
