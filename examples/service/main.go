// Service: run the CBES daemon in-process and query it over TCP the way an
// external workload manager (Condor/PBS/LSF-style) would: status, mapping
// comparison, and a scheduling request.
package main

import (
	"fmt"
	"log"
	"net"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/service"
	"cbes/internal/workloads"
)

func main() {
	topo := cluster.NewOrangeGrove()
	sys := cbes.NewSystem(topo, cbes.Config{})
	defer sys.Close()
	sys.Calibrate(bench.Options{})

	prog := workloads.SMG2000(60, 8)
	intels := topo.NodesByArch(cluster.ArchIntel)
	sys.MustProfile(prog, intels[:8])

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := service.Serve(sys, l); err != nil {
			log.Printf("server stopped: %v", err)
		}
	}()
	fmt.Printf("cbesd serving on %s\n", l.Addr())

	c, err := service.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	st, err := c.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status: cluster %s, %d nodes, apps %v\n", st.Cluster, st.Nodes, st.Apps)

	east := intels[:6]
	west := intels[6:]
	split := append(append([]int{}, east[:4]...), west[:4]...)
	compact := east[:4]
	compact = append(compact, east[4], east[5], west[0], west[1])
	cmp, err := c.Compare(prog.Name, [][]int{split, compact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compare: split-federation %.1fs vs mostly-east %.1fs -> best #%d\n",
		cmp.Seconds[0], cmp.Seconds[1], cmp.Best)

	dec, err := c.Schedule(prog.Name, "cs", intels, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: CS proposes %v, predicted %.1fs (%d evaluations, %dms)\n",
		dec.Mapping, dec.Predicted, dec.Evaluations, dec.SchedulerMillis)
}
