// Remap: the dynamic-remapping scenario of §2 — an application is scheduled
// on an idle cluster, background load then appears on its nodes, and the
// CBES remap advisor re-evaluates between checkpoints: if a new mapping
// (accounting for current conditions and the migration cost) beats staying,
// the remainder of the computation is migrated.
package main

import (
	"fmt"
	"log"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/monitor"
	"cbes/internal/remap"
	"cbes/internal/workloads"
)

func main() {
	topo := cluster.NewOrangeGrove()
	spec := workloads.SMGIterative(50, 8)
	prog := spec.Program()
	alphas := topo.NodesByArch(cluster.ArchAlpha)

	// Calibrate and profile once.
	sys := cbes.NewSystem(topo, cbes.Config{})
	defer sys.Close()
	sys.Calibrate(bench.Options{})
	sys.MustProfile(prog, alphas)
	eval, err := sys.Evaluator(prog.Name)
	if err != nil {
		log.Fatal(err)
	}

	// Initial placement on the idle cluster: CS picks (mostly) Alphas.
	initial, err := sys.Schedule(prog.Name, cbes.AlgCS, sys.Pool(
		cluster.ArchAlpha, cluster.ArchIntel), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial CS mapping: %v (predicted %.1fs on idle cluster)\n",
		initial.Mapping, initial.Predicted)

	// Mid-run, background load lands on three of the application's nodes.
	load := map[int]float64{}
	for _, n := range initial.Mapping[:3] {
		load[n] = 0.35
	}
	fmt.Printf("load burst: nodes %v drop to availability 0.35\n", initial.Mapping[:3])

	snap := func() *monitor.Snapshot {
		s := monitor.IdleSnapshot(topo.NumNodes())
		for n, a := range load {
			s.AvailCPU[n] = a
		}
		return s
	}
	runner := &remap.ClusterRunner{Topo: topo, Spec: spec, Load: load}
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel)

	// Executor with remapping enabled (checkpoint every quarter of the
	// iterations; migrating costs 8 s of checkpoint/restart).
	adv := &remap.Advisor{Eval: eval, Pool: pool, MigrationCost: 8}
	moved, err := remap.Execute(runner, core.Mapping(initial.Mapping), adv, 4, snap, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: an advisor whose migration cost forbids moving.
	stayAdv := &remap.Advisor{Eval: eval, Pool: pool, MigrationCost: 1e12}
	stayed, err := remap.Execute(runner, core.Mapping(initial.Mapping), stayAdv, 4, snap, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstay on degraded mapping : %.1fs\n", stayed.TotalTime)
	fmt.Printf("remap between checkpoints: %.1fs (%d migration(s), %v final mapping)\n",
		moved.TotalTime, moved.Remaps, moved.FinalMap)
	for _, seg := range moved.Segments {
		marker := " "
		if seg.Remapped {
			marker = "→"
		}
		fmt.Printf("  %s iterations [%3d,%3d) on %v: %.1fs\n",
			marker, seg.From, seg.To, seg.Mapping, seg.Seconds)
	}
	gain := stayed.TotalTime - moved.TotalTime
	fmt.Printf("remapping wins by %.1fs (%.0f%%)\n", gain, gain/stayed.TotalTime*100)
}
