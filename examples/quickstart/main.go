// Quickstart: build a virtual heterogeneous cluster, calibrate CBES,
// profile an application, compare mappings, schedule it, and validate the
// prediction against an actual (simulated) run.
package main

import (
	"fmt"
	"log"

	"cbes"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/workloads"
)

func main() {
	// 1. The Orange Grove testbed: 8 Alpha + 12 dual-PII + 8 SPARC over a
	//    federated switch fabric.
	topo := cluster.NewOrangeGrove()
	sys := cbes.NewSystem(topo, cbes.Config{})
	defer sys.Close()

	// 2. Off-line calibration: ping-pong benchmarks fit the per-path-class
	//    latency model (once per cluster).
	model := sys.Calibrate(bench.Options{})
	fmt.Printf("calibrated %d path classes; small-message latency spread %.0f%%\n",
		len(model.Classes), model.Spread(64)*100)

	// 3. Profile the application (NPB LU class B on 8 ranks) on the
	//    high-speed group.
	prog := workloads.LU(workloads.ClassB, 8)
	alphas := topo.NodesByArch(cluster.ArchAlpha)
	prof := sys.MustProfile(prog, alphas)
	fmt.Printf("profiled %s: communication fraction %.0f%%\n",
		prog.Name, prof.CommFraction()*100)

	// 4. Compare two hand-picked mappings.
	sparcs := topo.NodesByArch(cluster.ArchSPARC)
	good := core.Mapping(alphas)
	bad := core.Mapping{alphas[0], alphas[1], alphas[2], alphas[3],
		sparcs[0], sparcs[1], sparcs[2], sparcs[3]}
	pGood, err := sys.Predict(prog.Name, good)
	if err != nil {
		log.Fatal(err)
	}
	pBad, _ := sys.Predict(prog.Name, bad)
	fmt.Printf("predicted: all-Alpha %.1fs vs Alpha+SPARC %.1fs\n",
		pGood.Seconds, pBad.Seconds)

	// 5. Let the CS scheduler search the whole cluster.
	pool := sys.Pool(cluster.ArchAlpha, cluster.ArchIntel, cluster.ArchSPARC)
	dec, err := sys.Schedule(prog.Name, cbes.AlgCS, pool, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CS chose %v (predicted %.1fs, %d evaluations, %v search time)\n",
		dec.Mapping, dec.Predicted, dec.Evaluations, dec.SchedulerTime)

	// 6. Validate: run the application on the chosen mapping.
	res := sys.Run(prog, dec.Mapping)
	actual := res.Elapsed.Seconds()
	fmt.Printf("actual execution: %.1fs (prediction error %.1f%%)\n",
		actual, abs(dec.Predicted-actual)/actual*100)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
