// Batchqueue: a stream of parallel jobs arrives at the Orange Grove
// cluster and is placed by three policies — the naive boot-list
// round-robin of PVM/MPI runtimes, a speed-aware-but-communication-blind
// heuristic, and the CBES CS scheduler — reproducing the paper's intro
// positioning of CBES against existing runtime systems.
package main

import (
	"fmt"
	"log"

	"cbes"
	"cbes/internal/batch"
	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/des"
	"cbes/internal/netmodel"
	"cbes/internal/workloads"
)

// loadedNodes and loadedAvail describe pre-existing background load from
// other users: two stack Alphas and the whole 3Com-02 Alpha group are
// busy. The boot-list and static-speed policies cannot see this; the CBES
// monitor can.
var loadedNodes = []int{0, 1, 10, 11, 12, 13}

const loadedAvail = 0.35

func buildSystem(model *netmodel.Model, progs []workloads.Program) *cbes.System {
	sys := cbes.NewSystem(cluster.NewOrangeGrove(), cbes.Config{})
	if model == nil {
		sys.Calibrate(bench.Options{})
	} else if err := sys.UseModel(model); err != nil {
		log.Fatal(err)
	}
	alphas := sys.Topo.NodesByArch(cluster.ArchAlpha)
	for _, p := range progs {
		sys.MustProfile(p, alphas[:p.Ranks])
	}
	for _, n := range loadedNodes {
		n := n
		sys.Eng.Schedule(0, func() { sys.VC.SetAvailability(n, loadedAvail) })
	}
	// Give the monitor a few sampling rounds before the first job lands.
	sys.Advance(5 * des.Second)
	return sys
}

func main() {
	progs := []workloads.Program{
		workloads.SMG2000(12, 8),
		workloads.Aztec(8),
		workloads.Sweep3D(8),
	}
	// One mixed stream of jobs with staggered arrivals.
	mkJobs := func() []batch.Job {
		var jobs []batch.Job
		for i := 0; i < 6; i++ {
			jobs = append(jobs, batch.Job{
				Prog:   progs[i%len(progs)],
				Submit: des.Time(i) * 20 * des.Second,
			})
		}
		return jobs
	}

	fmt.Printf("6-job stream on Orange Grove (28 nodes, jobs of 8 ranks);\n")
	fmt.Printf("nodes %v carry pre-existing load (availability %.2f):\n\n", loadedNodes, loadedAvail)
	var model *netmodel.Model
	for _, policy := range []batch.Policy{
		batch.RoundRobin{},
		batch.FastestNodes{},
		batch.CBESPolicy{},
	} {
		sys := buildSystem(model, progs)
		model = sys.Model // calibrate once, reuse
		rep, err := batch.Run(sys, policy, mkJobs(), 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Render())
		sys.Close()
	}
	fmt.Println()
	fmt.Println("round-robin fills the boot list from node 0 and fastest-nodes chases")
	fmt.Println("nominal CPU speed — both land jobs on the loaded nodes. CBES combines")
	fmt.Println("monitored availability with the application profile and routes jobs")
	fmt.Println("around the load.")
}
