// Package cbes is the public face of the Cost/Benefit Estimating Service
// (CBES) reproduction: a runtime scheduling system that finds highly
// effective mappings of parallel-application tasks onto the nodes of a
// large heterogeneous cluster, after Katramatos & Chapin, "A Cost/Benefit
// Estimating Service for Mapping Parallel Applications on Heterogeneous
// Clusters" (IEEE CLUSTER 2005).
//
// A System bundles a virtual heterogeneous cluster (the substitute for the
// paper's physical Centurion and Orange Grove testbeds) with the CBES
// infrastructure: the off-line calibration that builds the network latency
// model, the monitoring daemons that track CPU and NIC availability, the
// application profiler, the mapping-evaluation core, and the CS/NCS/RS/GA
// schedulers.
//
// Typical use:
//
//	sys := cbes.NewSystem(cluster.NewOrangeGrove(), cbes.Config{})
//	defer sys.Close()
//	sys.Calibrate(bench.Options{})
//	prog := workloads.LU(workloads.ClassB, 8)
//	sys.MustProfile(prog, sys.Topo.NodesByArch(cluster.ArchAlpha))
//	dec, _ := sys.Schedule(prog.Name, cbes.AlgCS, pool, 0)
//	res := sys.Run(prog, dec.Mapping)
package cbes

import (
	"context"
	"fmt"

	"cbes/internal/bench"
	"cbes/internal/cluster"
	"cbes/internal/core"
	"cbes/internal/des"
	"cbes/internal/faults"
	"cbes/internal/monitor"
	"cbes/internal/mpisim"
	"cbes/internal/netmodel"
	"cbes/internal/profile"
	"cbes/internal/schedule"
	"cbes/internal/simnet"
	"cbes/internal/vcluster"
	"cbes/internal/workloads"
)

// Algorithm selects a scheduler.
type Algorithm string

// The schedulers of §6 plus the future-work genetic algorithm.
const (
	AlgCS  Algorithm = "cs"  // simulated annealing, full cost function
	AlgNCS Algorithm = "ncs" // simulated annealing, communication-blind
	AlgRS  Algorithm = "rs"  // random scheduler
	AlgGA  Algorithm = "ga"  // genetic algorithm
)

// Config tunes a System.
type Config struct {
	// Monitor configures the system monitoring daemons.
	Monitor monitor.Config
	// Seed drives deterministic background behaviour.
	Seed int64
}

// System is a virtual heterogeneous cluster with the CBES service attached.
type System struct {
	Eng     *des.Engine
	Topo    *cluster.Topology
	VC      *vcluster.Cluster
	Net     *simnet.Network
	Monitor *monitor.SystemMonitor
	Model   *netmodel.Model

	cfg      Config
	profiles map[string]*profile.Profile
	evals    map[string]*core.Evaluator
	faults   *faults.Injector
}

// NewSystem animates the topology and starts the monitoring infrastructure.
func NewSystem(topo *cluster.Topology, cfg Config) *System {
	eng := des.NewEngine()
	vc := vcluster.New(eng, topo)
	net := simnet.New(eng, topo)
	mon := monitor.NewSystemMonitor(vc, net, cfg.Monitor)
	return &System{
		Eng:      eng,
		Topo:     topo,
		VC:       vc,
		Net:      net,
		Monitor:  mon,
		cfg:      cfg,
		profiles: map[string]*profile.Profile{},
		evals:    map[string]*core.Evaluator{},
	}
}

// Close reaps all daemon processes. The System must not be used afterwards.
func (s *System) Close() { s.Eng.Shutdown() }

// Calibrate performs the off-line calibration phase on idle instances of
// the topology and installs the resulting network latency model. It is the
// once-per-cluster initialization of §2.
func (s *System) Calibrate(opts bench.Options) *netmodel.Model {
	s.Model = bench.Calibrate(s.Topo, opts)
	return s.Model
}

// UseModel installs a previously calibrated (possibly deserialized) model.
func (s *System) UseModel(m *netmodel.Model) error {
	if err := m.Attach(s.Topo); err != nil {
		return err
	}
	s.Model = m
	return nil
}

// Profile runs the program once on an idle instance of the topology under
// the given mapping, analyses the trace, measures per-architecture speeds,
// computes the λ factors, and registers the profile under prog.Name.
func (s *System) Profile(prog workloads.Program, mapping []int) (*profile.Profile, error) {
	if s.Model == nil {
		return nil, fmt.Errorf("cbes: calibrate before profiling")
	}
	if len(mapping) != prog.Ranks {
		return nil, fmt.Errorf("cbes: profiling mapping has %d nodes, program needs %d", len(mapping), prog.Ranks)
	}
	// Profiling happens off-line on a quiet system, like calibration. The
	// throwaway engine must be torn down afterwards or every profiling run
	// leaks its node daemon goroutines for the life of the process.
	eng := des.NewEngine()
	defer eng.Shutdown()
	vc := vcluster.New(eng, s.Topo)
	net := simnet.New(eng, s.Topo)
	res := mpisim.Run(vc, net, mapping, prog.Body, prog.Options())

	speeds := bench.MeasureArchSpeeds(s.Topo, prog.ArchEff, 0.5)
	prof, err := profile.FromTrace(res.Trace, s.Topo, speeds)
	if err != nil {
		return nil, err
	}
	if err := prof.ComputeLambdas(s.Model); err != nil {
		return nil, err
	}
	s.RegisterProfile(prof)
	return prof, nil
}

// MustProfile is Profile, panicking on error (for examples and tests).
func (s *System) MustProfile(prog workloads.Program, mapping []int) *profile.Profile {
	p, err := s.Profile(prog, mapping)
	if err != nil {
		panic(err)
	}
	return p
}

// RegisterProfile installs an externally built (e.g. deserialized) profile.
func (s *System) RegisterProfile(p *profile.Profile) {
	s.profiles[p.App] = p
	delete(s.evals, p.App)
}

// ProfileOf returns the registered profile for an application.
func (s *System) ProfileOf(app string) (*profile.Profile, bool) {
	p, ok := s.profiles[app]
	return p, ok
}

// Apps lists the registered application names.
func (s *System) Apps() []string {
	var names []string
	for n := range s.profiles {
		names = append(names, n)
	}
	return names
}

// Evaluator returns (building and caching on first use) the mapping
// evaluator for a registered application.
func (s *System) Evaluator(app string) (*core.Evaluator, error) {
	if e, ok := s.evals[app]; ok {
		return e, nil
	}
	p, ok := s.profiles[app]
	if !ok {
		return nil, fmt.Errorf("cbes: no profile registered for %q", app)
	}
	if s.Model == nil {
		return nil, fmt.Errorf("cbes: no network model; calibrate first")
	}
	e, err := core.NewEvaluator(s.Topo, s.Model, p)
	if err != nil {
		return nil, err
	}
	s.evals[app] = e
	return e, nil
}

// Snapshot returns the monitor's current resource-availability forecast.
func (s *System) Snapshot() *monitor.Snapshot { return s.Monitor.Snapshot() }

// Predict evaluates one mapping for a registered application under the
// current monitored conditions.
func (s *System) Predict(app string, m core.Mapping) (*core.Prediction, error) {
	e, err := s.Evaluator(app)
	if err != nil {
		return nil, err
	}
	return e.Predict(m, s.Snapshot())
}

// Schedule runs the selected scheduling algorithm for a registered
// application over the given node pool.
func (s *System) Schedule(app string, alg Algorithm, pool []int, seed int64) (*schedule.Decision, error) {
	e, err := s.Evaluator(app)
	if err != nil {
		return nil, err
	}
	return ScheduleOn(e, s.Snapshot(), alg, pool, seed)
}

// ScheduleOn runs the selected scheduling algorithm against an explicit
// evaluator and availability snapshot. It touches no System state, so
// concurrent callers holding an immutable snapshot (the service's
// lock-free read path) can schedule in parallel: evaluators are safe for
// concurrent use and the decision is deterministic in (evaluator,
// snapshot, algorithm, pool, seed).
func ScheduleOn(e *core.Evaluator, snap *monitor.Snapshot, alg Algorithm, pool []int, seed int64) (*schedule.Decision, error) {
	return ScheduleOnCtx(context.Background(), e, snap, alg, pool, seed)
}

// ScheduleOnCtx is ScheduleOn with a caller context: when ctx carries an
// active trace span (obs.ContextWithSpan), the scheduling decision and
// its per-restart search spans join that trace — the service tier uses
// this to extend each RPC's causal tree down into the search. When ctx
// carries a deadline, the search abandons promptly on expiry.
func ScheduleOnCtx(ctx context.Context, e *core.Evaluator, snap *monitor.Snapshot, alg Algorithm, pool []int, seed int64) (*schedule.Decision, error) {
	return ScheduleOnCtxEffort(ctx, e, snap, alg, pool, seed, 0)
}

// ScheduleOnCtxEffort is ScheduleOnCtx with an explicit search-effort cap
// (total energy evaluations; 0 selects the scheduler default). The knob
// the cost/benefit tradeoff turns: more effort buys better mappings at
// higher estimating cost.
func ScheduleOnCtxEffort(ctx context.Context, e *core.Evaluator, snap *monitor.Snapshot, alg Algorithm, pool []int, seed int64, effort int) (*schedule.Decision, error) {
	req := &schedule.Request{Eval: e, Snap: snap, Pool: pool, Seed: seed, Ctx: ctx, Effort: effort}
	switch alg {
	case AlgCS:
		return schedule.SimulatedAnnealing(req)
	case AlgNCS:
		return schedule.SimulatedAnnealingNoComm(req)
	case AlgRS:
		return schedule.Random(req)
	case AlgGA:
		return schedule.Genetic(req)
	default:
		return nil, fmt.Errorf("cbes: unknown algorithm %q", alg)
	}
}

// Run executes the program on the live system under the given mapping,
// contending with whatever background load and other applications are
// active, and returns the result (including the actual execution time a
// prediction can be compared against).
func (s *System) Run(prog workloads.Program, mapping core.Mapping) *mpisim.Result {
	return mpisim.Run(s.VC, s.Net, mapping, prog.Body, prog.Options())
}

// Launch starts the program on the live system without waiting.
func (s *System) Launch(prog workloads.Program, mapping core.Mapping) *mpisim.World {
	return mpisim.Launch(s.VC, s.Net, mapping, prog.Body, prog.Options())
}

// Advance runs the simulation for d of simulated time (monitors sample,
// background load evolves, running applications progress).
func (s *System) Advance(d des.Time) { s.Eng.RunUntil(s.Eng.Now() + d) }

// Faults returns the system's fault injector (created on first use), for
// arming deterministic failure scenarios against the simulated cluster.
func (s *System) Faults() *faults.Injector {
	if s.faults == nil {
		s.faults = faults.NewInjector(s.VC, s.Net, s.Monitor)
	}
	return s.faults
}

// Pool returns the node IDs of the given architectures (in ID order), a
// convenience for building administrative pools.
func (s *System) Pool(archs ...cluster.Arch) []int {
	var pool []int
	for _, a := range archs {
		pool = append(pool, s.Topo.NodesByArch(a)...)
	}
	return pool
}
